//! Backup-generations workload: successive snapshots of the same logical
//! volume with configurable mutation patterns.
//!
//! Primary deduplication's best case is exactly this shape — nightly
//! backups where most content repeats generation to generation. The
//! generator produces `generations` snapshots of a base stream, each
//! applying:
//!
//! * **overwrites** — blocks rewritten in place (dedup-friendly at any
//!   chunking), and
//! * **insertions** — bytes spliced in, shifting everything after them
//!   (the case that defeats fixed chunking and motivates CDC; used by the
//!   `ablation_cdc` experiment).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::content::{decision_rng, unique_block};
use crate::{Dataset, GeneratedObject};

/// Parameters of the backup-generations generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackupSpec {
    /// Size of the base volume in bytes.
    pub volume_bytes: u64,
    /// Number of snapshots to produce (including the base).
    pub generations: usize,
    /// Blocks overwritten in place per generation.
    pub overwrites_per_gen: usize,
    /// Byte insertions per generation (each shifts the remainder).
    pub insertions_per_gen: usize,
    /// Size of each inserted splice.
    pub insertion_bytes: usize,
    /// Block granularity for overwrites.
    pub block_size: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BackupSpec {
    fn default() -> Self {
        BackupSpec {
            volume_bytes: 8 << 20,
            generations: 4,
            overwrites_per_gen: 8,
            insertions_per_gen: 2,
            insertion_bytes: 512,
            block_size: 32 * 1024,
            seed: 4242,
        }
    }
}

impl BackupSpec {
    /// Overrides the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Pure in-place overwrites (fixed chunking keeps up).
    pub fn overwrites_only(mut self) -> Self {
        self.insertions_per_gen = 0;
        self
    }

    /// Pure insertions (fixed chunking loses all alignment).
    pub fn insertions_only(mut self) -> Self {
        self.overwrites_per_gen = 0;
        self
    }

    /// Generates the snapshot series, oldest first. Each snapshot is one
    /// object named `backup-<generation>`.
    pub fn dataset(&self) -> Dataset {
        let mut rng = decision_rng(self.seed, 0xBAC);
        let bs = self.block_size as usize;
        let mut volume = Vec::with_capacity(self.volume_bytes as usize);
        let mut next_unique = 1u64 << 56;
        while volume.len() < self.volume_bytes as usize {
            next_unique += 1;
            volume.extend_from_slice(&unique_block(bs, next_unique, self.seed));
        }
        volume.truncate(self.volume_bytes as usize);

        let mut objects = Vec::with_capacity(self.generations);
        for generation in 0..self.generations {
            if generation > 0 {
                // Mutate: overwrites first, then insertions.
                for _ in 0..self.overwrites_per_gen {
                    let blocks = volume.len() / bs;
                    if blocks == 0 {
                        break;
                    }
                    let at = rng.gen_range(0..blocks) * bs;
                    next_unique += 1;
                    let fresh = unique_block(bs, next_unique, self.seed);
                    volume[at..at + bs].copy_from_slice(&fresh);
                }
                for _ in 0..self.insertions_per_gen {
                    let at = rng.gen_range(0..volume.len().max(1));
                    next_unique += 1;
                    let splice = unique_block(self.insertion_bytes, next_unique, self.seed);
                    volume.splice(at..at, splice);
                }
            }
            objects.push(GeneratedObject {
                name: format!("backup-{generation}"),
                data: volume.clone(),
            });
        }
        Dataset { objects }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dedup_core::global_ratio;

    #[test]
    fn overwrites_dedup_well_at_fixed_chunking() {
        let d = BackupSpec::default().overwrites_only().dataset();
        let r = global_ratio(d.iter_refs(), 32 * 1024).ratio_percent();
        // 4 generations, few overwritten blocks: most content repeats.
        assert!(r > 65.0, "overwrite-only backups should dedup: {r}");
    }

    #[test]
    fn insertions_defeat_fixed_chunking() {
        let d = BackupSpec::default().insertions_only().dataset();
        let fixed = global_ratio(d.iter_refs(), 32 * 1024).ratio_percent();
        // An insertion only misaligns the content *after* it, so fixed
        // chunking keeps the shared prefixes — but loses most of the rest.
        // Theoretical ceiling here is 75% (4 identical-but-shifted
        // generations).
        assert!(
            fixed < 40.0,
            "insertions shift alignment; fixed chunking should lose most dedup: {fixed}"
        );
    }

    #[test]
    fn cdc_recovers_insertion_dedup() {
        use dedup_chunk::{Chunker, GearCdcChunker};
        use dedup_fingerprint::Fingerprint;
        use std::collections::HashSet;

        let d = BackupSpec::default().insertions_only().dataset();
        let chunker = GearCdcChunker::with_avg_size(32 * 1024);
        let mut seen: HashSet<Fingerprint> = HashSet::new();
        let mut total = 0u64;
        let mut unique = 0u64;
        for (_, data) in d.iter_refs() {
            for span in chunker.chunks(data) {
                let c = &data[span.offset as usize..span.end() as usize];
                total += c.len() as u64;
                if seen.insert(Fingerprint::of(c)) {
                    unique += c.len() as u64;
                }
            }
        }
        let ratio = (1.0 - unique as f64 / total as f64) * 100.0;
        assert!(ratio > 50.0, "CDC should recover shifted dedup: {ratio}");
    }

    #[test]
    fn generations_grow_monotonically_with_insertions() {
        let d = BackupSpec::default().dataset();
        for w in d.objects.windows(2) {
            assert!(w[1].data.len() >= w[0].data.len());
        }
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            BackupSpec::default().dataset(),
            BackupSpec::default().dataset()
        );
    }
}
