//! Compressor hardening over the real workload generators.
//!
//! The inline compression plane feeds every flushed chunk through
//! `dedup_compress`, so the compressor must round-trip — and respect its
//! worst-case expansion bound — on exactly the byte distributions the
//! experiment workloads produce: FIO-style dedup mixes, SPEC-SFS-2014-DB
//! file sets, private-cloud VM fleets, and the VM-image set. `proptest`
//! sweeps each generator's parameter space instead of a handful of fixed
//! seeds.

use dedup_compress::{compress, decompress, decompress_with_limit, max_compressed_len};
use dedup_workloads::cloud::CloudSpec;
use dedup_workloads::fio::FioSpec;
use dedup_workloads::sfs::SfsSpec;
use dedup_workloads::vm_images::VmImageSpec;
use proptest::prelude::*;

/// Round-trips one buffer through the compressor and checks the
/// stored-block expansion bound and the exact-size decompress limit the
/// engine uses (it records each chunk's raw length and decodes with
/// `decompress_with_limit(stream, raw_len)`).
fn check(data: &[u8]) {
    let packed = compress(data);
    assert!(
        packed.len() <= max_compressed_len(data.len()),
        "len {} expanded to {} (bound {})",
        data.len(),
        packed.len(),
        max_compressed_len(data.len())
    );
    let got = decompress(&packed).expect("generated stream must decode");
    assert_eq!(&got[..], data);
    let limited = decompress_with_limit(&packed, data.len()).expect("exact limit must fit");
    assert_eq!(&limited[..], data);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// FIO-style mixes across the dedup-fraction and block-size axes.
    #[test]
    fn fio_datasets_round_trip(
        seed in any::<u64>(),
        dup_pct in 0u32..=100,
        block_shift in 12u32..=15, // 4 KiB..32 KiB
    ) {
        let spec = FioSpec::new(256 * 1024, dup_pct as f64 / 100.0)
            .block_size(1 << block_shift)
            .object_size(64 * 1024)
            .seed(seed);
        for (_, data) in spec.dataset().iter_refs() {
            check(data);
        }
    }

    /// SPEC-SFS-2014-DB-style file sets across load levels.
    #[test]
    fn sfs_datasets_round_trip(seed in any::<u64>(), load in 1u32..=4) {
        let spec = SfsSpec::with_load(load)
            .files(6, 32 * 1024)
            .seed(seed);
        for (_, data) in spec.dataset().iter_refs() {
            check(data);
        }
    }

    /// Private-cloud VM fleets (mixed shared/unique block content).
    #[test]
    fn cloud_datasets_round_trip(seed in any::<u64>()) {
        let spec = CloudSpec {
            vms: 4,
            os_images: 2,
            common_pool_blocks: 8,
            block_size: 8 * 1024,
            ..CloudSpec::default()
        }
        .scaled(1.0 / 16.0)
        .seed(seed);
        for (_, data) in spec.dataset().iter_refs() {
            check(data);
        }
    }

    /// VM images: compressible OS region plus per-image user data, and
    /// the incompressible user-image variant.
    #[test]
    fn vm_images_round_trip(seed in any::<u64>(), os_pct in 0u32..=100) {
        let spec = VmImageSpec {
            images: 3,
            image_bytes: 128 * 1024,
            os_fraction: os_pct as f64 / 100.0,
            block_size: 16 * 1024,
            seed,
        };
        for i in 0..spec.images {
            check(&spec.image(i).data);
            check(&spec.incompressible_user_image(i).data);
        }
    }
}
