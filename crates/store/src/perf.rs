//! Performance topology: maps cluster hardware onto timing-plane resources.
//!
//! Defaults are parameterised to the paper's testbed (§6.1): SATA SSDs on
//! each OSD, 10 GbE between nodes and clients, Xeon-class CPUs.

use dedup_sim::{CostExpr, ResourceId, ResourcePool, ResourceSpec, SimDuration};
use serde::{Deserialize, Serialize};

/// Identifier of a client host (each has its own NIC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClientId(pub u32);

impl ClientId {
    /// A server-internal actor (background deduplication, recovery): its
    /// traffic crosses node NICs but no client NIC.
    pub const INTERNAL: ClientId = ClientId(u32::MAX);
}

/// Hardware performance parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfConfig {
    /// OSD disk bandwidth in bytes/s (default ~500 MB/s SATA SSD).
    pub disk_bytes_per_sec: u64,
    /// OSD disk per-op latency in microseconds (default 80 µs).
    pub disk_latency_us: u64,
    /// Node/client NIC bandwidth in bytes/s (default 10 GbE ≈ 1.25 GB/s).
    pub nic_bytes_per_sec: u64,
    /// One-way network latency in microseconds (default 50 µs).
    pub nic_latency_us: u64,
    /// Per-node CPU processing rate for storage work in bytes/s; models the
    /// cost of fingerprinting, EC math, and compression (default 400 MB/s).
    pub cpu_bytes_per_sec: u64,
    /// Number of client hosts (default 3, as in the paper's testbed).
    pub clients: u32,
}

impl Default for PerfConfig {
    fn default() -> Self {
        PerfConfig {
            disk_bytes_per_sec: 500 * 1_000_000,
            disk_latency_us: 80,
            nic_bytes_per_sec: 1_250 * 1_000_000,
            nic_latency_us: 50,
            cpu_bytes_per_sec: 400 * 1_000_000,
            clients: 3,
        }
    }
}

/// Resource handles for every device in the cluster.
#[derive(Debug, Clone)]
pub struct PerfTopology {
    /// The queueing resources themselves.
    pub pool: ResourcePool,
    /// One disk per OSD, indexed by OSD id.
    pub disks: Vec<ResourceId>,
    /// One NIC per node, indexed by node id.
    pub nics: Vec<ResourceId>,
    /// One CPU per node, indexed by node id.
    pub cpus: Vec<ResourceId>,
    /// One NIC per client host.
    pub client_nics: Vec<ResourceId>,
    /// The configuration the topology was built from.
    pub config: PerfConfig,
}

impl PerfTopology {
    /// Builds resources for `nodes` nodes with `osds_per_node` disks each.
    pub fn build(config: PerfConfig, nodes: u32, osds_per_node: u32) -> Self {
        let mut pool = ResourcePool::new();
        let mut disks = Vec::new();
        let mut nics = Vec::new();
        let mut cpus = Vec::new();
        for n in 0..nodes {
            nics.push(pool.register(ResourceSpec::nic(
                format!("node.{n}/nic"),
                config.nic_bytes_per_sec,
                config.nic_latency_us * 1_000,
            )));
            cpus.push(pool.register(ResourceSpec::cpu(
                format!("node.{n}/cpu"),
                config.cpu_bytes_per_sec,
            )));
            for d in 0..osds_per_node {
                disks.push(pool.register(ResourceSpec::disk(
                    format!("osd.{}/disk", n * osds_per_node + d),
                    config.disk_bytes_per_sec,
                    config.disk_latency_us * 1_000,
                )));
            }
        }
        let client_nics = (0..config.clients)
            .map(|c| {
                pool.register(ResourceSpec::nic(
                    format!("client.{c}/nic"),
                    config.nic_bytes_per_sec,
                    config.nic_latency_us * 1_000,
                ))
            })
            .collect();
        PerfTopology {
            pool,
            disks,
            nics,
            cpus,
            client_nics,
            config,
        }
    }

    /// Registers one more disk (when an OSD is added to a node) and returns
    /// its resource id.
    pub fn add_disk(&mut self, osd_index: usize) -> ResourceId {
        let id = self.pool.register(ResourceSpec::disk(
            format!("osd.{osd_index}/disk"),
            self.config.disk_bytes_per_sec,
            self.config.disk_latency_us * 1_000,
        ));
        self.disks.push(id);
        id
    }

    /// Cost of moving `bytes` from a client to a node (client NIC then node
    /// NIC, sequentially — the payload crosses both).
    pub fn client_to_node(&self, client: ClientId, node: usize, bytes: u64) -> CostExpr {
        if client == ClientId::INTERNAL {
            // Server-internal traffic only touches the node's NIC.
            return CostExpr::transfer(self.nics[node], bytes);
        }
        CostExpr::seq([
            CostExpr::transfer(self.client_nic(client), bytes),
            CostExpr::transfer(self.nics[node], bytes),
        ])
    }

    /// Cost of moving `bytes` between two nodes (both NICs; free if same
    /// node).
    pub fn node_to_node(&self, from: usize, to: usize, bytes: u64) -> CostExpr {
        if from == to {
            return CostExpr::Nop;
        }
        CostExpr::seq([
            CostExpr::transfer(self.nics[from], bytes),
            CostExpr::transfer(self.nics[to], bytes),
        ])
    }

    /// Cost of a disk read/write of `bytes` on `osd_index`.
    pub fn disk_io(&self, osd_index: usize, bytes: u64) -> CostExpr {
        CostExpr::transfer(self.disks[osd_index], bytes)
    }

    /// Cost of CPU work processing `bytes` on `node` (fingerprint, EC,
    /// compression).
    pub fn cpu_work(&self, node: usize, bytes: u64) -> CostExpr {
        CostExpr::transfer(self.cpus[node], bytes)
    }

    /// Cost of CPU work of a fixed duration on `node`.
    pub fn cpu_busy(&self, node: usize, duration: SimDuration) -> CostExpr {
        CostExpr::busy(self.cpus[node], duration)
    }

    /// Request-handling CPU charged per storage op on the serving node:
    /// a fixed dispatch cost plus a memcpy-rate per-byte term.
    pub fn request_cpu(&self, node: usize, bytes: u64) -> CostExpr {
        let nanos = 10_000 + bytes / 2; // 10us dispatch + ~2 GB/s copy
        CostExpr::busy(self.cpus[node], SimDuration::from_nanos(nanos))
    }

    /// The NIC of a client (wraps around if more clients than configured).
    pub fn client_nic(&self, client: ClientId) -> ResourceId {
        self.client_nics[client.0 as usize % self.client_nics.len()]
    }

    /// CPU utilisation of `node` over the horizon `until`.
    pub fn cpu_utilization(&self, node: usize, until: dedup_sim::SimTime) -> f64 {
        self.pool.get(self.cpus[node]).utilization(until)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dedup_sim::SimTime;

    #[test]
    fn build_registers_everything() {
        let t = PerfTopology::build(PerfConfig::default(), 4, 4);
        assert_eq!(t.disks.len(), 16);
        assert_eq!(t.nics.len(), 4);
        assert_eq!(t.cpus.len(), 4);
        assert_eq!(t.client_nics.len(), 3);
        assert_eq!(t.pool.len(), 16 + 4 + 4 + 3);
    }

    #[test]
    fn same_node_transfer_is_free() {
        let t = PerfTopology::build(PerfConfig::default(), 2, 1);
        assert!(t.node_to_node(1, 1, 1 << 20).is_nop());
        assert!(!t.node_to_node(0, 1, 1 << 20).is_nop());
    }

    #[test]
    fn client_nics_wrap() {
        let t = PerfTopology::build(PerfConfig::default(), 1, 1);
        assert_eq!(t.client_nic(ClientId(0)), t.client_nic(ClientId(3)));
        assert_ne!(t.client_nic(ClientId(0)), t.client_nic(ClientId(1)));
    }

    #[test]
    fn costs_execute() {
        let mut t = PerfTopology::build(PerfConfig::default(), 2, 2);
        let c = CostExpr::seq([t.client_to_node(ClientId(0), 0, 4096), t.disk_io(0, 4096)]);
        let done = t.pool.execute(SimTime::ZERO, &c);
        // At least the two NIC latencies plus the disk latency.
        assert!(done.as_nanos() >= (50 + 50 + 80) * 1_000);
    }

    #[test]
    fn add_disk_extends_topology() {
        let mut t = PerfTopology::build(PerfConfig::default(), 1, 1);
        let before = t.disks.len();
        t.add_disk(before);
        assert_eq!(t.disks.len(), before + 1);
    }
}
