//! Pool configuration: redundancy scheme, PG count, compression.

use dedup_placement::{FailureDomain, PlacementRule};
use serde::{Deserialize, Serialize};

/// How a pool protects data against device loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Redundancy {
    /// `n` full copies on distinct failure domains (primary-copy).
    Replicated(usize),
    /// Reed–Solomon `k` data + `m` parity shards.
    Erasure {
        /// Data shard count.
        k: usize,
        /// Parity shard count.
        m: usize,
    },
}

impl Redundancy {
    /// Devices an object of this redundancy occupies.
    pub fn width(&self) -> usize {
        match self {
            Redundancy::Replicated(n) => *n,
            Redundancy::Erasure { k, m } => k + m,
        }
    }

    /// Raw-capacity expansion factor over the logical data size.
    pub fn overhead_factor(&self) -> f64 {
        match self {
            Redundancy::Replicated(n) => *n as f64,
            Redundancy::Erasure { k, m } => (k + m) as f64 / *k as f64,
        }
    }

    /// Device failures the scheme tolerates without data loss.
    pub fn fault_tolerance(&self) -> usize {
        match self {
            Redundancy::Replicated(n) => n - 1,
            Redundancy::Erasure { m, .. } => *m,
        }
    }
}

/// Static description of one pool.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolConfig {
    /// Human-readable pool name.
    pub name: String,
    /// Redundancy scheme.
    pub redundancy: Redundancy,
    /// Number of placement groups.
    pub pg_count: u32,
    /// Topology level replicas must not share.
    pub failure_domain: FailureDomain,
    /// Whether replicas are compressed at rest (paper §6.4.3's Btrfs
    /// feature).
    pub compression: bool,
}

impl PoolConfig {
    /// A replicated pool with `copies` replicas spread across nodes.
    pub fn replicated(name: impl Into<String>, copies: usize) -> Self {
        PoolConfig {
            name: name.into(),
            redundancy: Redundancy::Replicated(copies),
            pg_count: 128,
            failure_domain: FailureDomain::Node,
            compression: false,
        }
    }

    /// An erasure-coded `k + m` pool spread across nodes.
    pub fn erasure(name: impl Into<String>, k: usize, m: usize) -> Self {
        PoolConfig {
            name: name.into(),
            redundancy: Redundancy::Erasure { k, m },
            pg_count: 128,
            failure_domain: FailureDomain::Node,
            compression: false,
        }
    }

    /// Enables at-rest compression.
    pub fn with_compression(mut self) -> Self {
        self.compression = true;
        self
    }

    /// Overrides the PG count.
    ///
    /// # Panics
    ///
    /// Panics if `pg_count` is zero.
    pub fn with_pg_count(mut self, pg_count: u32) -> Self {
        assert!(pg_count > 0, "pg_count must be positive");
        self.pg_count = pg_count;
        self
    }

    /// Overrides the failure domain.
    pub fn with_failure_domain(mut self, failure_domain: FailureDomain) -> Self {
        self.failure_domain = failure_domain;
        self
    }

    /// The placement rule this pool uses.
    pub fn rule(&self) -> PlacementRule {
        PlacementRule {
            replicas: self.redundancy.width(),
            failure_domain: self.failure_domain,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical parameters (zero copies, EC `k == 0`, ...).
    pub fn validate(&self) {
        match self.redundancy {
            Redundancy::Replicated(n) => assert!(n >= 1, "need at least one copy"),
            Redundancy::Erasure { k, m } => {
                assert!(k >= 1 && m >= 1, "EC needs k >= 1 and m >= 1");
                assert!(k + m <= 255, "EC k+m must fit GF(256)");
            }
        }
        assert!(self.pg_count > 0, "pg_count must be positive");
    }
}

/// Capacity usage of one pool, split into the components the paper's
/// Table 2 accounting needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PoolUsage {
    /// Logical bytes: size of each object counted once.
    pub logical_bytes: u64,
    /// Physical payload bytes across all replicas/shards, post-compression.
    pub stored_bytes: u64,
    /// Metadata bytes (xattr + omap) across all replicas.
    pub metadata_bytes: u64,
    /// Fixed per-object overhead across all replicas.
    pub overhead_bytes: u64,
    /// Number of distinct objects.
    pub objects: u64,
}

impl PoolUsage {
    /// Total physical footprint: payload + metadata + per-object overhead.
    pub fn total_bytes(&self) -> u64 {
        self.stored_bytes + self.metadata_bytes + self.overhead_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redundancy_width_and_overhead() {
        assert_eq!(Redundancy::Replicated(3).width(), 3);
        assert_eq!(Redundancy::Erasure { k: 2, m: 1 }.width(), 3);
        assert!((Redundancy::Replicated(2).overhead_factor() - 2.0).abs() < 1e-12);
        assert!((Redundancy::Erasure { k: 2, m: 1 }.overhead_factor() - 1.5).abs() < 1e-12);
        assert_eq!(Redundancy::Replicated(2).fault_tolerance(), 1);
        assert_eq!(Redundancy::Erasure { k: 2, m: 1 }.fault_tolerance(), 1);
    }

    #[test]
    fn builders_compose() {
        let p = PoolConfig::replicated("meta", 2)
            .with_pg_count(64)
            .with_compression();
        assert_eq!(p.pg_count, 64);
        assert!(p.compression);
        assert_eq!(p.rule().replicas, 2);
        p.validate();
        let e = PoolConfig::erasure("chunks", 2, 1);
        assert_eq!(e.rule().replicas, 3);
        e.validate();
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn invalid_ec_rejected() {
        PoolConfig::erasure("bad", 0, 1).validate();
    }

    #[test]
    fn usage_totals() {
        let u = PoolUsage {
            logical_bytes: 100,
            stored_bytes: 200,
            metadata_bytes: 30,
            overhead_bytes: 40,
            objects: 2,
        };
        assert_eq!(u.total_bytes(), 270);
    }
}
