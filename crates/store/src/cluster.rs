//! The cluster: pools, I/O paths, transactions, and capacity accounting.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use dedup_erasure::ReedSolomon;
use dedup_obs::{EventLog, Registry, Severity, TraceCtx, Tracer};
use dedup_placement::{ClusterMap, NodeId, OsdId, PgMap, PoolId};
use dedup_sim::{CostExpr, SimTime};
use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::error::StoreError;
use crate::metrics::ClusterMetrics;
use crate::object::{ObjectName, Payload, RangeSet, StoredObject, PER_OBJECT_OVERHEAD};
use crate::osd::Osd;
use crate::perf::{ClientId, PerfConfig, PerfTopology};
use crate::pool::{PoolConfig, PoolUsage, Redundancy};
use crate::wal::{decode_records, WalBackend, WalManifest, WalRecord};

/// A value produced by a cluster operation together with the virtual-time
/// cost of producing it. Callers execute the cost against the cluster's
/// [`PerfTopology`] (or discard it for control-plane work).
#[derive(Debug, Clone)]
#[must_use = "execute or explicitly discard the operation's cost"]
pub struct Timed<T> {
    /// The operation's result.
    pub value: T,
    /// Resource usage to charge to the timing plane.
    pub cost: CostExpr,
}

impl<T> Timed<T> {
    /// Wraps a value with its cost.
    pub fn new(value: T, cost: CostExpr) -> Self {
        Timed { value, cost }
    }

    /// Transforms the value, keeping the cost.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Timed<U> {
        Timed {
            value: f(self.value),
            cost: self.cost,
        }
    }
}

/// An I/O context: which pool to address and which client host issues the
/// request (chooses the client-side NIC), mirroring a RADOS `ioctx`.
///
/// A context may also carry a [`TraceCtx`]: when it does, cluster ops tag
/// the cost legs they assemble with semantic step names so traced runs
/// can attribute time per step. Tags are timing-transparent and absent
/// entirely on untraced contexts, so the untraced path is unchanged.
#[derive(Debug, Clone)]
pub struct IoCtx {
    /// Target pool.
    pub pool: PoolId,
    /// Issuing client host.
    pub client: ClientId,
    /// Optional per-op trace context.
    pub trace: Option<TraceCtx>,
}

impl PartialEq for IoCtx {
    fn eq(&self, other: &Self) -> bool {
        // Trace identity is diagnostic state, not addressing state.
        self.pool == other.pool && self.client == other.client
    }
}

impl Eq for IoCtx {}

impl IoCtx {
    /// Creates a context for `pool` from client 0.
    pub fn new(pool: PoolId) -> Self {
        IoCtx {
            pool,
            client: ClientId(0),
            trace: None,
        }
    }

    /// Uses a specific client host.
    pub fn with_client(mut self, client: ClientId) -> Self {
        self.client = client;
        self
    }

    /// Attaches a trace context: subsequent ops through this `IoCtx` tag
    /// their cost legs.
    pub fn with_trace(mut self, trace: TraceCtx) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Tags `cost` with `label` when this context is traced; returns it
    /// untouched otherwise.
    pub fn label(&self, label: &str, cost: CostExpr) -> CostExpr {
        match &self.trace {
            Some(t) => t.label(label, cost),
            None => cost,
        }
    }
}

/// One operation inside an object transaction (applied atomically).
///
/// Payload-carrying ops hold [`Bytes`]: a caller that already owns a
/// shared buffer hands it through the transaction without copying, and
/// the fan-out below stores refcounted views of it.
#[derive(Debug, Clone, PartialEq)]
pub enum TxOp {
    /// Replaces the whole data payload.
    WriteFull(Bytes),
    /// Writes at an offset, zero-filling any gap.
    Write {
        /// Byte offset of the write.
        offset: u64,
        /// Bytes to write.
        data: Bytes,
    },
    /// Truncates (or zero-extends) the payload.
    Truncate(u64),
    /// Sets one extended attribute.
    SetXattr(String, Bytes),
    /// Removes one extended attribute.
    RemoveXattr(String),
    /// Sets one omap entry.
    SetOmap(String, Bytes),
    /// Removes one omap entry.
    RemoveOmap(String),
    /// Punches a hole: the range reads as zero and stops occupying space
    /// (used by cache eviction in the dedup layer).
    PunchHole {
        /// Start of the hole.
        offset: u64,
        /// Length of the hole.
        len: u64,
    },
    /// Deletes the object.
    Remove,
}

/// An object's metadata maps: (xattrs, omap). Values are shared buffers.
type MetadataMaps = (BTreeMap<String, Bytes>, BTreeMap<String, Bytes>);

/// In-memory logical view of an object while a transaction is applied.
///
/// `data` is a shared buffer: loading a replicated object is a refcount
/// bump, and whole-payload writes adopt the caller's buffer. Mutating ops
/// go through [`Bytes::with_vec_mut`], which detaches a private copy only
/// while other views are still alive.
#[derive(Debug, Clone, Default)]
pub(crate) struct LogicalObject {
    pub data: Bytes,
    pub xattrs: BTreeMap<String, Bytes>,
    pub omap: BTreeMap<String, Bytes>,
    pub holes: RangeSet,
}

pub(crate) struct PoolState {
    pub config: PoolConfig,
    pub pgs: PgMap,
    pub codec: Option<ReedSolomon>,
}

/// The scale-out cluster: map + devices + pools + timing plane.
///
/// Each OSD's object map sits behind its own [`RwLock`] so data-plane ops
/// on distinct devices never contend. Cluster I/O methods take `&self`
/// and lock at most one OSD at a time (lock ordering: OSDs are always
/// acquired sequentially, never nested), so two clients hitting different
/// objects proceed in parallel. Per-object atomicity across replicas is
/// the *caller's* responsibility: the dedup engine serializes ops on the
/// same object through its shard locks.
pub struct Cluster {
    pub(crate) map: ClusterMap,
    pub(crate) osds: Vec<RwLock<Osd>>,
    pub(crate) pools: BTreeMap<PoolId, PoolState>,
    next_pool: u32,
    pub(crate) perf: PerfTopology,
    object_size_cap: u64,
    pub(crate) metrics: ClusterMetrics,
    pub(crate) tracer: Option<Tracer>,
    /// Structured event log for OSD and WAL lifecycle events; `None` (the
    /// default) keeps every emission site a single branch.
    pub(crate) events: Option<EventLog>,
    wal: Option<WalState>,
}

/// The cluster's handle on the durability plane: the backend owning the
/// stable bytes, the global record sequence, the checkpoint epoch, and a
/// flag that suppresses logging while recovery replays (a replayed record
/// must not be re-appended).
struct WalState {
    backend: Arc<dyn WalBackend>,
    next_seq: AtomicU64,
    epoch: AtomicU64,
    logging: AtomicBool,
}

/// Summary of one completed checkpoint (compaction of the WAL).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WalCheckpointReport {
    /// Checkpoint generation written to the MANIFEST.
    pub epoch: u64,
    /// First sequence number *not* covered by the new segments.
    pub last_seq: u64,
    /// Live objects encoded into segments.
    pub objects: u64,
    /// Segment files written (one per pool).
    pub segments: u64,
    /// Total bytes across the new segments.
    pub segment_bytes: u64,
}

/// What [`Cluster::wal_manifest_check`] found in a healthy MANIFEST.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalManifestSummary {
    /// Checkpoint generation the MANIFEST names (0 = no checkpoint yet).
    pub epoch: u64,
    /// First sequence number not covered by the checkpoint segments.
    pub last_seq: u64,
    /// Segments the MANIFEST names (all verified present and clean).
    pub segments: u64,
}

/// Summary of one WAL recovery pass.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WalRecoveryReport {
    /// Synthetic records applied from checkpoint segments.
    pub checkpoint_records: u64,
    /// Logged transactions replayed from the per-OSD log tails.
    pub log_records_replayed: u64,
    /// Replayed records the transact path rejected (topology mismatch —
    /// zero on a faithful rebuild).
    pub replay_errors: u64,
    /// Per-OSD logs whose tail was torn and dropped by CRC.
    pub torn_tails_dropped: u64,
    /// Next sequence number after recovery (logging resumes here).
    pub last_seq: u64,
}

/// Builds a [`Cluster`] with a regular topology.
#[derive(Debug, Clone)]
pub struct ClusterBuilder {
    nodes: u32,
    osds_per_node: u32,
    racks: Option<u32>,
    perf: PerfConfig,
    object_size_cap: u64,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        ClusterBuilder {
            nodes: 4,
            osds_per_node: 4,
            racks: None,
            perf: PerfConfig::default(),
            object_size_cap: 256 << 20,
        }
    }
}

impl ClusterBuilder {
    /// Starts from the paper's testbed shape: 4 nodes × 4 OSDs.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the node count.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn nodes(mut self, nodes: u32) -> Self {
        assert!(nodes > 0, "need at least one node");
        self.nodes = nodes;
        self
    }

    /// Sets OSDs per node.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn osds_per_node(mut self, osds: u32) -> Self {
        assert!(osds > 0, "need at least one OSD per node");
        self.osds_per_node = osds;
        self
    }

    /// Groups nodes into `racks` racks round-robin (for rack-level failure
    /// domains). Without this, every node is its own implicit rack.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn racks(mut self, racks: u32) -> Self {
        assert!(racks > 0, "need at least one rack");
        self.racks = Some(racks);
        self
    }

    /// Overrides hardware performance parameters.
    pub fn perf(mut self, perf: PerfConfig) -> Self {
        self.perf = perf;
        self
    }

    /// Overrides the per-object size cap.
    pub fn object_size_cap(mut self, cap: u64) -> Self {
        self.object_size_cap = cap;
        self
    }

    /// Builds the cluster.
    pub fn build(self) -> Cluster {
        let mut map = ClusterMap::new();
        let mut osds = Vec::new();
        let rack_ids: Vec<_> = (0..self.racks.unwrap_or(0))
            .map(|_| map.add_rack())
            .collect();
        for n in 0..self.nodes {
            let node = match self.racks {
                Some(r) => map.add_node_in_rack(rack_ids[(n % r) as usize]),
                None => map.add_node(),
            };
            for _ in 0..self.osds_per_node {
                map.add_osd(node, 1.0);
                osds.push(RwLock::new(Osd::new()));
            }
        }
        let perf = PerfTopology::build(self.perf, self.nodes, self.osds_per_node);
        Cluster {
            map,
            osds,
            pools: BTreeMap::new(),
            next_pool: 1,
            perf,
            object_size_cap: self.object_size_cap,
            metrics: ClusterMetrics::new(Registry::new()),
            tracer: None,
            events: None,
            wal: None,
        }
    }
}

impl Cluster {
    /// Creates a pool and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid (see [`PoolConfig::validate`]).
    pub fn create_pool(&mut self, config: PoolConfig) -> PoolId {
        config.validate();
        let id = PoolId(self.next_pool);
        self.next_pool += 1;
        let codec = match config.redundancy {
            Redundancy::Erasure { k, m } => {
                Some(ReedSolomon::new(k, m).expect("validated parameters"))
            }
            Redundancy::Replicated(_) => None,
        };
        let pgs = PgMap::new(id, config.pg_count);
        self.pools.insert(id, PoolState { config, pgs, codec });
        id
    }

    /// The metrics registry this cluster records into.
    pub fn registry(&self) -> &Registry {
        self.metrics.registry()
    }

    /// Rebinds the cluster's instruments to `registry`, so several layers
    /// (e.g. the dedup engine stacked on this cluster) share one registry
    /// and one snapshot. Counts recorded against the previous registry are
    /// not carried over — attach before driving I/O.
    pub fn attach_registry(&mut self, registry: Registry) {
        self.metrics = ClusterMetrics::new(registry);
    }

    /// Attaches a per-op tracer. Cluster-internal ops with no caller
    /// context (recovery, scrub) tag their cost legs through it, and
    /// stacked layers can retrieve it via [`Cluster::tracer`]. The tracer
    /// also learns the timing plane's resource names.
    pub fn attach_tracer(&mut self, tracer: Tracer) {
        tracer.register_resources(&self.perf.pool);
        self.tracer = Some(tracer);
    }

    /// The attached tracer, if any.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// Attaches a structured event log: OSD up/down transitions, WAL
    /// checkpoints/recoveries/torn-tail drops, and recovery repair passes
    /// emit into it. Events only observe — they never add virtual cost.
    pub fn attach_events(&mut self, events: EventLog) {
        self.events = Some(events);
    }

    /// The attached event log, if any.
    pub fn events(&self) -> Option<&EventLog> {
        self.events.as_ref()
    }

    /// Attaches the durability plane: from here on every committed
    /// transaction is appended — before any replica mutates — to the log
    /// of the object's primary OSD on `backend`.
    ///
    /// Control-plane state (topology, pool configs) is *not* logged, as
    /// in the real system where the monitor map is separate; a recovering
    /// cluster must be rebuilt with the same topology and pools before
    /// [`Cluster::wal_recover`] replays the data plane. Replica-level
    /// repair (recovery/scrub re-replication) is likewise below the
    /// logical-object level the WAL captures.
    pub fn attach_wal(&mut self, backend: Arc<dyn WalBackend>) {
        self.wal = Some(WalState {
            backend,
            next_seq: AtomicU64::new(1),
            epoch: AtomicU64::new(0),
            logging: AtomicBool::new(true),
        });
    }

    /// Whether a WAL backend is attached.
    pub fn wal_attached(&self) -> bool {
        self.wal.is_some()
    }

    fn wal_active(&self) -> bool {
        self.wal
            .as_ref()
            .is_some_and(|w| w.logging.load(Ordering::Relaxed))
    }

    /// Appends one transaction record to the primary's log. Called at the
    /// commit point of `transact`, after every check that could still fail
    /// the transaction — so a logged record always replays cleanly.
    fn wal_append(
        &self,
        pool: PoolId,
        name: &ObjectName,
        primary: OsdId,
        ops: &[TxOp],
    ) -> Result<(), StoreError> {
        let Some(w) = &self.wal else { return Ok(()) };
        if !w.logging.load(Ordering::Relaxed) {
            return Ok(());
        }
        let seq = w.next_seq.fetch_add(1, Ordering::Relaxed);
        let record = WalRecord {
            seq,
            pool,
            name: name.clone(),
            ops: ops.to_vec(),
        }
        .encode();
        w.backend.append(primary.0 as usize, &record)?;
        self.metrics.wal_appends.inc();
        self.metrics.wal_append_bytes.add(record.len() as u64);
        Ok(())
    }

    /// Compacts the WAL: re-encodes every pool's live objects as synthetic
    /// records (a checkpoint *is* a compacted WAL — same codec, same
    /// replay path, holes and metadata preserved) into one immutable
    /// segment per pool, atomically replaces the MANIFEST, then truncates
    /// the per-OSD logs. A crash anywhere inside leaves a recoverable
    /// store: segments are invisible until the MANIFEST names them, and a
    /// crashed truncation only leaves records the sequence filter skips.
    ///
    /// The caller must quiesce writes for the duration (the dedup engine
    /// checkpoints under its exclusive borrow).
    ///
    /// # Errors
    ///
    /// Fails if a durable write fails; no-op without an attached WAL.
    pub fn wal_checkpoint(&self) -> Result<WalCheckpointReport, StoreError> {
        let Some(w) = &self.wal else {
            return Ok(WalCheckpointReport::default());
        };
        let epoch = w.epoch.load(Ordering::Relaxed) + 1;
        let last_seq = w.next_seq.load(Ordering::Relaxed);
        let mut report = WalCheckpointReport {
            epoch,
            last_seq,
            ..Default::default()
        };
        let pool_ids: Vec<PoolId> = self.pools.keys().copied().collect();
        let mut segments = Vec::with_capacity(pool_ids.len());
        for pool in pool_ids {
            let mut seg = Vec::new();
            for name in self.list_objects(pool)? {
                let Some(logical) = self.load_logical(pool, &name)? else {
                    continue;
                };
                let rec = WalRecord {
                    seq: 0,
                    pool,
                    name,
                    ops: Self::checkpoint_ops(&logical),
                };
                seg.extend_from_slice(&rec.encode());
                report.objects += 1;
            }
            let seg_name = format!("seg-{epoch:016x}-pool{}", pool.0);
            w.backend.write_segment(&seg_name, &seg)?;
            report.segment_bytes += seg.len() as u64;
            segments.push(seg_name);
        }
        report.segments = segments.len() as u64;
        let manifest = WalManifest {
            epoch,
            last_seq,
            segments,
        };
        w.backend.replace_manifest(&manifest.encode())?;
        for osd in 0..self.osds.len() {
            w.backend.truncate_log(osd)?;
        }
        w.epoch.store(epoch, Ordering::Relaxed);
        self.metrics.wal_checkpoints.inc();
        if let Some(ev) = &self.events {
            ev.emit(
                Severity::Info,
                "cluster.wal",
                "checkpoint",
                vec![
                    ("epoch", report.epoch.to_string()),
                    ("objects", report.objects.to_string()),
                    ("segment_bytes", report.segment_bytes.to_string()),
                ],
            );
        }
        Ok(report)
    }

    /// The synthetic transaction that rebuilds one logical object from
    /// scratch. Holes are re-punched explicitly: materializing them as
    /// resident zeros would silently break dedup redirection and space
    /// accounting after a recovery.
    fn checkpoint_ops(logical: &LogicalObject) -> Vec<TxOp> {
        let mut ops = Vec::with_capacity(1 + logical.xattrs.len() + logical.omap.len());
        ops.push(TxOp::WriteFull(logical.data.clone()));
        for (start, end) in logical.holes.iter() {
            ops.push(TxOp::PunchHole {
                offset: start,
                len: end - start,
            });
        }
        for (k, v) in &logical.xattrs {
            ops.push(TxOp::SetXattr(k.clone(), v.clone()));
        }
        for (k, v) in &logical.omap {
            ops.push(TxOp::SetOmap(k.clone(), v.clone()));
        }
        ops
    }

    /// Rebuilds the data plane from stable storage: applies the
    /// MANIFEST's checkpoint segments, then merges the per-OSD log tails
    /// in sequence order and replays them through the ordinary transact
    /// path (with logging suspended). Torn tails are dropped by CRC and
    /// counted. The cluster must have been rebuilt with the same topology
    /// and pools as the one that crashed.
    ///
    /// Replay drives the normal I/O paths, so cluster throughput counters
    /// include replayed work; `wal.records_replayed` tracks it separately.
    ///
    /// # Errors
    ///
    /// Fails on corrupt checkpoint state (a segment named by the MANIFEST
    /// that is missing or undecodable); no-op without an attached WAL.
    pub fn wal_recover(&mut self) -> Result<WalRecoveryReport, StoreError> {
        let start = Instant::now();
        let Some(w) = &self.wal else {
            return Ok(WalRecoveryReport::default());
        };
        w.logging.store(false, Ordering::Relaxed);
        let mut report = WalRecoveryReport::default();
        let mut epoch = 0;
        let mut last_seq = 1;
        let mut checkpoint: Vec<WalRecord> = Vec::new();
        if let Some(buf) = w.backend.read_manifest() {
            let manifest = WalManifest::decode(&buf)?;
            epoch = manifest.epoch;
            last_seq = manifest.last_seq;
            for seg_name in &manifest.segments {
                let Some(seg) = w.backend.read_segment(seg_name) else {
                    return Err(StoreError::Wal {
                        detail: format!("manifest names missing segment {seg_name}"),
                    });
                };
                let (records, torn) = decode_records(&seg);
                if torn {
                    return Err(StoreError::Wal {
                        detail: format!("checkpoint segment {seg_name} is corrupt"),
                    });
                }
                checkpoint.extend(records);
            }
        }
        let mut tail: Vec<WalRecord> = Vec::new();
        for osd in 0..self.osds.len() {
            let (records, torn) = decode_records(&w.backend.read_log(osd));
            if torn {
                report.torn_tails_dropped += 1;
                self.metrics.wal_torn_dropped.inc();
                if let Some(ev) = &self.events {
                    ev.emit(
                        Severity::Warn,
                        "cluster.wal",
                        "torn_tail_dropped",
                        vec![("osd", osd.to_string())],
                    );
                }
            }
            // Records below the MANIFEST horizon are already inside the
            // segments (a crashed post-checkpoint truncation left them).
            tail.extend(records.into_iter().filter(|r| r.seq >= last_seq));
        }
        tail.sort_by_key(|r| r.seq);
        let mut max_seq = last_seq.saturating_sub(1);
        for rec in checkpoint {
            let ctx = IoCtx::new(rec.pool);
            let _ = self.transact(&ctx, &rec.name, rec.ops)?;
            report.checkpoint_records += 1;
        }
        for rec in tail {
            max_seq = max_seq.max(rec.seq);
            let ctx = IoCtx::new(rec.pool);
            match self.transact(&ctx, &rec.name, rec.ops) {
                Ok(_) => report.log_records_replayed += 1,
                Err(_) => report.replay_errors += 1,
            }
        }
        report.last_seq = max_seq + 1;
        self.metrics
            .wal_records_replayed
            .add(report.checkpoint_records + report.log_records_replayed);
        w.next_seq.store(max_seq + 1, Ordering::Relaxed);
        w.epoch.store(epoch, Ordering::Relaxed);
        w.logging.store(true, Ordering::Relaxed);
        self.metrics
            .wal_recovery_wall_ns
            .record(start.elapsed().as_nanos() as u64);
        if let Some(ev) = &self.events {
            ev.emit(
                Severity::Info,
                "cluster.wal",
                "recovered",
                vec![
                    ("checkpoint_records", report.checkpoint_records.to_string()),
                    (
                        "log_records_replayed",
                        report.log_records_replayed.to_string(),
                    ),
                    ("replay_errors", report.replay_errors.to_string()),
                    ("torn_tails_dropped", report.torn_tails_dropped.to_string()),
                ],
            );
        }
        Ok(report)
    }

    /// Validates the attached WAL's durable state without replaying it:
    /// the MANIFEST must decode, and every segment it names must exist
    /// and decode cleanly. Returns `None` without an attached WAL, and
    /// `Err(detail)` describing the first corruption found. A missing
    /// MANIFEST is a valid pre-first-checkpoint state.
    pub fn wal_manifest_check(&self) -> Option<Result<WalManifestSummary, String>> {
        let w = self.wal.as_ref()?;
        let Some(buf) = w.backend.read_manifest() else {
            return Some(Ok(WalManifestSummary::default()));
        };
        let manifest = match WalManifest::decode(&buf) {
            Ok(m) => m,
            Err(e) => return Some(Err(format!("manifest undecodable: {e}"))),
        };
        for seg_name in &manifest.segments {
            let Some(seg) = w.backend.read_segment(seg_name) else {
                return Some(Err(format!("manifest names missing segment {seg_name}")));
            };
            let (_, torn) = decode_records(&seg);
            if torn {
                return Some(Err(format!("checkpoint segment {seg_name} is corrupt")));
            }
        }
        Some(Ok(WalManifestSummary {
            epoch: manifest.epoch,
            last_seq: manifest.last_seq,
            segments: manifest.segments.len() as u64,
        }))
    }

    /// Tags `cost` when a tracer is attached (for cluster-internal ops
    /// that have no caller-supplied [`IoCtx`] trace).
    pub(crate) fn label(&self, label: &str, cost: CostExpr) -> CostExpr {
        match &self.tracer {
            Some(_) => CostExpr::tagged(label, cost),
            None => cost,
        }
    }

    /// The shared cluster map.
    pub fn map(&self) -> &ClusterMap {
        &self.map
    }

    /// The timing-plane topology.
    pub fn perf(&self) -> &PerfTopology {
        &self.perf
    }

    /// Mutable timing-plane topology (to execute costs / read utilisation).
    pub fn perf_mut(&mut self) -> &mut PerfTopology {
        &mut self.perf
    }

    /// Executes a cost against the timing plane starting at `now`.
    ///
    /// Execution is leg-level ([`dedup_sim::FlowEngine`]): parallel
    /// branches interleave on shared resources in virtual-time order, so
    /// large fan-out costs (recovery, rebalance) complete when their
    /// bottleneck resource drains rather than serializing per branch.
    pub fn execute_at(&mut self, now: SimTime, cost: &CostExpr) -> SimTime {
        let mut engine = dedup_sim::FlowEngine::new();
        engine.start(now, cost, 0);
        let done = engine
            .advance(&mut self.perf.pool)
            .map(|c| c.at)
            .unwrap_or(now);
        self.metrics
            .exec_latency
            .record(done.saturating_since(now).as_nanos());
        if let Some(ev) = &self.events {
            ev.advance(done);
        }
        done
    }

    /// A pool's configuration.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::NoSuchPool`] for unknown pools.
    pub fn pool_config(&self, pool: PoolId) -> Result<&PoolConfig, StoreError> {
        Ok(&self.state(pool)?.config)
    }

    pub(crate) fn state(&self, pool: PoolId) -> Result<&PoolState, StoreError> {
        self.pools.get(&pool).ok_or(StoreError::NoSuchPool(pool))
    }

    fn node_of(&self, osd: OsdId) -> usize {
        self.map.osd(osd).node.0 as usize
    }

    pub(crate) fn acting(&self, pool: PoolId, name: &ObjectName) -> Result<Vec<OsdId>, StoreError> {
        let st = self.state(pool)?;
        let pg = st.pgs.pg_of(name.as_bytes());
        let acting = self.map.acting_set(pg, &st.config.rule());
        if acting.len() < st.config.redundancy.width() {
            // EC pools genuinely need the full width to write; replicated
            // pools can run degraded with at least one copy.
            let min_needed = match st.config.redundancy {
                Redundancy::Replicated(_) => 1,
                Redundancy::Erasure { k, m } => k + m,
            };
            if acting.len() < min_needed {
                return Err(StoreError::InsufficientOsds {
                    needed: min_needed,
                    available: acting.len(),
                });
            }
        }
        Ok(acting)
    }

    /// Splits `[offset, offset + len)` of an object into maximal subranges
    /// tagged with whether their bytes are resident (`true`) or punched
    /// holes (`false`). Ranges are clipped to the object size.
    ///
    /// # Errors
    ///
    /// Fails if the object does not exist.
    pub fn resident_ranges(
        &self,
        pool: PoolId,
        name: &ObjectName,
        offset: u64,
        len: u64,
    ) -> Result<Vec<(u64, u64, bool)>, StoreError> {
        self.state(pool)?;
        let holders = self.holders(pool, name);
        let holder = holders
            .first()
            .ok_or_else(|| StoreError::NoSuchObject(pool, name.clone()))?;
        let guard = self.osds[holder.0 as usize].read();
        let obj = guard.get(pool, name).expect("holder has object");
        let size = obj.payload.object_len();
        let end = (offset + len).min(size);
        if offset >= end {
            return Ok(Vec::new());
        }
        let mut out = Vec::new();
        let mut cursor = offset;
        for (hs, he) in obj.holes.iter() {
            let hs = hs.max(offset);
            let he = he.min(end);
            if hs >= he {
                continue;
            }
            if cursor < hs {
                out.push((cursor, hs, true));
            }
            out.push((hs, he, false));
            cursor = he;
        }
        if cursor < end {
            out.push((cursor, end, true));
        }
        Ok(out)
    }

    /// The primary OSD currently serving an object name.
    ///
    /// # Errors
    ///
    /// Fails for unknown pools or when no device is eligible.
    pub fn primary_of(&self, pool: PoolId, name: &ObjectName) -> Result<OsdId, StoreError> {
        Ok(self.acting(pool, name)?[0])
    }

    /// OSDs (any, not just acting) currently holding a replica/shard.
    ///
    /// Locks one device at a time; the snapshot is only stable for a given
    /// object while the caller holds that object's shard lock.
    pub(crate) fn holders(&self, pool: PoolId, name: &ObjectName) -> Vec<OsdId> {
        self.osds
            .iter()
            .enumerate()
            .filter(|(_, o)| o.read().contains(pool, name))
            .map(|(i, _)| OsdId(i as u32))
            .collect()
    }

    /// Reconstructs the logical object (data + metadata) from whatever
    /// replicas/shards exist. Returns `Ok(None)` if the object does not
    /// exist anywhere.
    pub(crate) fn load_logical(
        &self,
        pool: PoolId,
        name: &ObjectName,
    ) -> Result<Option<LogicalObject>, StoreError> {
        let st = self.state(pool)?;
        let holders = self.holders(pool, name);
        if holders.is_empty() {
            return Ok(None);
        }
        // Clone everything needed out of the first holder's guard so no
        // OSD lock is held while touching another device.
        let (xattrs, omap, holes, full_payload) = {
            let guard = self.osds[holders[0].0 as usize].read();
            let meta_src = guard.get(pool, name).expect("holder has object");
            let full = match &meta_src.payload {
                Payload::Full(b) => Some(b.clone()),
                Payload::Shard { .. } => None,
            };
            (
                meta_src.xattrs.clone(),
                meta_src.omap.clone(),
                meta_src.holes.clone(),
                full,
            )
        };
        let data = match st.config.redundancy {
            Redundancy::Replicated(_) => match full_payload {
                Some(b) => b,
                None => {
                    return Err(StoreError::Inconsistent {
                        pool,
                        name: name.clone(),
                        detail: "shard payload in replicated pool".into(),
                    })
                }
            },
            Redundancy::Erasure { k, m } => {
                let codec = st.codec.as_ref().expect("EC pool has codec");
                // Shard views are refcount bumps; only the decode below
                // materialises fresh bytes.
                let mut shards: Vec<Option<Bytes>> = vec![None; k + m];
                let mut object_len = 0u64;
                for h in &holders {
                    let guard = self.osds[h.0 as usize].read();
                    if let Some(obj) = guard.get(pool, name) {
                        if let Payload::Shard {
                            index,
                            object_len: ol,
                            bytes,
                        } = &obj.payload
                        {
                            object_len = *ol;
                            if shards[*index as usize].is_none() {
                                shards[*index as usize] = Some(bytes.clone());
                            }
                        }
                    }
                }
                if shards.iter().take(k).all(Option::is_some) {
                    // Healthy: gather the systematic data shards directly.
                    let mut out = Vec::with_capacity(object_len as usize);
                    for shard in shards.iter().take(k) {
                        out.extend_from_slice(shard.as_ref().expect("checked present"));
                    }
                    out.truncate(object_len as usize);
                    Bytes::from(out)
                } else {
                    let owned: Vec<Option<Vec<u8>>> =
                        shards.into_iter().map(|s| s.map(|b| b.to_vec())).collect();
                    Bytes::from(codec.decode_object(owned, object_len as usize)?)
                }
            }
        };
        Ok(Some(LogicalObject {
            data,
            xattrs,
            omap,
            holes,
        }))
    }

    /// Persists a logical object to its acting set, replacing all replicas.
    /// Write-locks one device at a time.
    ///
    /// Zero-copy fan-out: replicated pools store a refcounted view of one
    /// parent buffer per OSD, and EC pools slice all `k + m` shards out of
    /// one contiguous stripe buffer, so no replica or shard owns a private
    /// payload allocation.
    fn store_logical(
        &self,
        pool: PoolId,
        name: &ObjectName,
        logical: &LogicalObject,
    ) -> Result<(), StoreError> {
        let acting = self.acting(pool, name)?;
        let st = self.state(pool)?;
        let compression = st.config.compression;
        match st.config.redundancy {
            Redundancy::Replicated(_) => {
                let hole_bytes = logical.holes.total().min(logical.data.len() as u64);
                let stored_bytes = if compression {
                    dedup_compress::compress(&logical.data).len() as u64
                } else {
                    logical.data.len() as u64 - hole_bytes
                };
                for osd in acting {
                    let mut obj = StoredObject::new(Payload::Full(logical.data.clone()));
                    obj.xattrs = logical.xattrs.clone();
                    obj.omap = logical.omap.clone();
                    obj.holes = logical.holes.clone();
                    obj.stored_bytes = stored_bytes;
                    self.osds[osd.0 as usize]
                        .write()
                        .put(pool, name.clone(), obj);
                    self.metrics.bytes_shared.add(logical.data.len() as u64);
                }
            }
            Redundancy::Erasure { .. } => {
                let codec = st.codec.as_ref().expect("EC pool has codec");
                let (stripe, shard_len) = codec.encode_object_striped(&logical.data)?;
                let stripe = Bytes::from(stripe);
                let k = match st.config.redundancy {
                    Redundancy::Erasure { k, .. } => k as u64,
                    Redundancy::Replicated(_) => unreachable!("EC branch"),
                };
                let hole_share = logical.holes.total().min(logical.data.len() as u64) / k;
                for (i, osd) in acting.iter().enumerate() {
                    let bytes = stripe.slice(i * shard_len..(i + 1) * shard_len);
                    let stored_bytes = if compression {
                        dedup_compress::compress(&bytes).len() as u64
                    } else {
                        (bytes.len() as u64).saturating_sub(hole_share)
                    };
                    self.metrics.bytes_shared.add(bytes.len() as u64);
                    let mut obj = StoredObject::new(Payload::Shard {
                        index: i as u8,
                        object_len: logical.data.len() as u64,
                        bytes,
                    });
                    obj.xattrs = logical.xattrs.clone();
                    obj.omap = logical.omap.clone();
                    obj.holes = logical.holes.clone();
                    obj.stored_bytes = stored_bytes;
                    self.osds[osd.0 as usize]
                        .write()
                        .put(pool, name.clone(), obj);
                }
            }
        }
        Ok(())
    }

    fn remove_everywhere(&self, pool: PoolId, name: &ObjectName) {
        for osd in &self.osds {
            osd.write().remove(pool, name);
        }
    }

    /// Applies a transaction atomically to one object.
    ///
    /// The returned cost models the full write path: client → primary
    /// transfer, any EC read-modify-write, redundancy fan-out, and disk
    /// writes.
    ///
    /// # Errors
    ///
    /// Fails if the pool is unknown, too few devices are up, the object
    /// would exceed the size cap, or EC decode fails.
    ///
    /// Takes `&self`: device maps are locked individually. Concurrent
    /// transactions on *distinct* objects are safe; the caller must
    /// serialize transactions touching the same object (the dedup engine
    /// does this with per-object shard locks).
    pub fn transact(
        &self,
        ctx: &IoCtx,
        name: &ObjectName,
        ops: Vec<TxOp>,
    ) -> Result<Timed<()>, StoreError> {
        let mut payload_bytes = 0u64;
        let mut removes = false;
        for op in &ops {
            match op {
                TxOp::WriteFull(data) => payload_bytes += data.len() as u64,
                TxOp::Write { data, .. } => payload_bytes += data.len() as u64,
                TxOp::Remove => removes = true,
                _ => {}
            }
        }
        if payload_bytes > 0 {
            self.metrics.writes.inc();
            self.metrics.write_bytes.add(payload_bytes);
        }
        if removes {
            self.metrics.deletes.inc();
        }
        if let Some(result) = self.try_fast_replicated_tx(ctx, name, &ops) {
            return result;
        }
        let acting = self.acting(ctx.pool, name)?;
        let primary = acting[0];
        let primary_node = self.node_of(primary);
        let existing = self.load_logical(ctx.pool, name)?;
        let existed = existing.is_some();
        let mut logical = existing.unwrap_or_default();
        let old_len = logical.data.len() as u64;
        // Snapshot the ops for the write-ahead record before the apply
        // loop consumes them (Bytes payloads clone by refcount).
        let wal_ops: Option<Vec<TxOp>> = self.wal_active().then(|| ops.clone());

        // Apply ops in memory.
        let mut data_bytes = 0u64;
        let mut meta_bytes = 0u64;
        let mut removed = false;
        for op in ops {
            match op {
                TxOp::WriteFull(data) => {
                    data_bytes += data.len() as u64;
                    logical.holes.clear();
                    // Adopt the caller's buffer: the fan-out below shares
                    // it with every replica instead of copying it.
                    logical.data = data;
                }
                TxOp::Write { offset, data } => {
                    let end = offset + data.len() as u64;
                    self.check_cap(end)?;
                    self.metrics.bytes_copied.add(data.len() as u64);
                    logical.data.with_vec_mut(|buf| {
                        if buf.len() < end as usize {
                            buf.resize(end as usize, 0);
                        }
                        buf[offset as usize..end as usize].copy_from_slice(&data);
                    });
                    logical.holes.remove(offset, end);
                    data_bytes += data.len() as u64;
                }
                TxOp::Truncate(len) => {
                    self.check_cap(len)?;
                    let old = logical.data.len() as u64;
                    logical.data.with_vec_mut(|buf| buf.resize(len as usize, 0));
                    logical.holes.truncate(len);
                    if len > old {
                        // Zero-extension is sparse.
                        logical.holes.insert(old, len);
                    }
                }
                TxOp::PunchHole { offset, len } => {
                    let end = (offset + len).min(logical.data.len() as u64);
                    if offset < end {
                        logical
                            .data
                            .with_vec_mut(|buf| buf[offset as usize..end as usize].fill(0));
                        logical.holes.insert(offset, end);
                        meta_bytes += 16;
                    }
                }
                TxOp::SetXattr(k, v) => {
                    meta_bytes += (k.len() + v.len()) as u64;
                    logical.xattrs.insert(k, v);
                }
                TxOp::RemoveXattr(k) => {
                    logical.xattrs.remove(&k);
                }
                TxOp::SetOmap(k, v) => {
                    meta_bytes += (k.len() + v.len()) as u64;
                    logical.omap.insert(k, v);
                }
                TxOp::RemoveOmap(k) => {
                    logical.omap.remove(&k);
                }
                TxOp::Remove => removed = true,
            }
        }
        self.check_cap(logical.data.len() as u64)?;

        // Build the cost before mutating state.
        let st = self.state(ctx.pool)?;
        let redundancy = st.config.redundancy;
        let compression = st.config.compression;
        let payload = data_bytes + meta_bytes + 64; // 64B of message header
        let client_leg = ctx.label(
            "client_xfer",
            self.perf.client_to_node(ctx.client, primary_node, payload),
        );

        let cost = if removed {
            // Deletion: metadata-sized fan-out.
            let fanout = CostExpr::par(acting.iter().map(|&osd| {
                CostExpr::seq([
                    self.perf.node_to_node(primary_node, self.node_of(osd), 64),
                    self.perf.disk_io(osd.0 as usize, 64),
                ])
            }));
            CostExpr::seq([client_leg, ctx.label("delete_fanout", fanout)])
        } else {
            match redundancy {
                Redundancy::Replicated(_) => {
                    let per_replica = payload;
                    let fanout = CostExpr::par(acting.iter().map(|&osd| {
                        CostExpr::seq([
                            self.perf
                                .node_to_node(primary_node, self.node_of(osd), per_replica),
                            self.perf.disk_io(osd.0 as usize, per_replica),
                        ])
                    }));
                    let compress_cpu = if compression {
                        self.perf.cpu_work(primary_node, data_bytes)
                    } else {
                        CostExpr::Nop
                    };
                    CostExpr::seq([
                        client_leg,
                        self.perf.request_cpu(primary_node, data_bytes),
                        ctx.label("compress", compress_cpu),
                        ctx.label("rep_fanout", fanout),
                    ])
                }
                Redundancy::Erasure { k, m } => {
                    // Partial update of an existing object forces a
                    // read-modify-write of the stripes (paper §6.4.1's EC
                    // latency penalty).
                    let full_rewrite = data_bytes >= old_len.max(1) && old_len == 0;
                    let rmw = if existed && !full_rewrite {
                        let shard = (old_len / k as u64).max(1);
                        CostExpr::par(acting.iter().take(k).map(|&osd| {
                            CostExpr::seq([
                                self.perf.disk_io(osd.0 as usize, shard),
                                self.perf
                                    .node_to_node(self.node_of(osd), primary_node, shard),
                            ])
                        }))
                    } else {
                        CostExpr::Nop
                    };
                    let new_len = logical.data.len() as u64;
                    let shard_out = new_len.div_ceil(k as u64).max(1) + meta_bytes + 64;
                    // Parity math on the primary's CPU.
                    let ec_cpu = self
                        .perf
                        .cpu_work(primary_node, new_len * m as u64 / k as u64);
                    let fanout = CostExpr::par(acting.iter().map(|&osd| {
                        CostExpr::seq([
                            self.perf
                                .node_to_node(primary_node, self.node_of(osd), shard_out),
                            self.perf.disk_io(osd.0 as usize, shard_out),
                        ])
                    }));
                    CostExpr::seq([
                        client_leg,
                        self.perf.request_cpu(primary_node, data_bytes),
                        ctx.label("ec_rmw", rmw),
                        ctx.label("ec_parity", ec_cpu),
                        ctx.label("ec_fanout", fanout),
                    ])
                }
            }
        };

        // Write-ahead: the record reaches stable storage before any
        // replica mutates, and only after every check that could still
        // fail the transaction — a crash here loses the op entirely (the
        // caller saw an error), never half of it.
        if let Some(wal_ops) = &wal_ops {
            self.wal_append(ctx.pool, name, primary, wal_ops)?;
        }

        // Commit.
        if removed {
            self.remove_everywhere(ctx.pool, name);
        } else {
            // Replace replicas everywhere the object previously was (stale
            // holders outside the acting set would otherwise resurrect old
            // data during recovery).
            let stale: Vec<OsdId> = self
                .holders(ctx.pool, name)
                .into_iter()
                .filter(|h| {
                    !self
                        .acting(ctx.pool, name)
                        .map(|a| a.contains(h))
                        .unwrap_or(false)
                })
                .collect();
            for s in stale {
                self.osds[s.0 as usize].write().remove(ctx.pool, name);
            }
            self.store_logical(ctx.pool, name, &logical)?;
        }
        Ok(Timed::new((), cost))
    }

    /// In-place transaction fast path for uncompressed replicated pools:
    /// mutates each replica directly instead of reloading and re-storing
    /// the whole logical object. Returns `None` when the slow path must
    /// run (EC, compression, whole-object ops, or inconsistent holders).
    fn try_fast_replicated_tx(
        &self,
        ctx: &IoCtx,
        name: &ObjectName,
        ops: &[TxOp],
    ) -> Option<Result<Timed<()>, StoreError>> {
        let st = self.pools.get(&ctx.pool)?;
        if !matches!(st.config.redundancy, Redundancy::Replicated(_)) || st.config.compression {
            return None;
        }
        let in_place = ops.iter().all(|op| {
            matches!(
                op,
                TxOp::Write { .. }
                    | TxOp::SetXattr(..)
                    | TxOp::RemoveXattr(..)
                    | TxOp::SetOmap(..)
                    | TxOp::RemoveOmap(..)
                    | TxOp::PunchHole { .. }
            )
        });
        if !in_place {
            return None;
        }
        let acting = match self.acting(ctx.pool, name) {
            Ok(a) => a,
            Err(e) => return Some(Err(e)),
        };
        let holders = self.holders(ctx.pool, name);
        // Fast path only when the replica set is exactly the acting set or
        // the object is new; anything else needs the slow path's cleanup.
        let fresh = holders.is_empty();
        if !fresh {
            let mut sorted_holders = holders.clone();
            let mut sorted_acting = acting.clone();
            sorted_holders.sort();
            sorted_acting.sort();
            if sorted_holders != sorted_acting {
                return None;
            }
        }
        // Size-cap check before mutating anything.
        let mut max_end = 0u64;
        let mut data_bytes = 0u64;
        let mut meta_bytes = 0u64;
        for op in ops {
            match op {
                TxOp::Write { offset, data } => {
                    max_end = max_end.max(offset + data.len() as u64);
                    data_bytes += data.len() as u64;
                }
                TxOp::SetXattr(k, v) | TxOp::SetOmap(k, v) => {
                    meta_bytes += (k.len() + v.len()) as u64
                }
                TxOp::PunchHole { .. } => meta_bytes += 16,
                _ => {}
            }
        }
        if let Err(e) = self.check_cap(max_end) {
            return Some(Err(e));
        }

        let primary_node = self.node_of(acting[0]);
        let payload = data_bytes + meta_bytes + 64;
        let client_leg = self.perf.client_to_node(ctx.client, primary_node, payload);
        let fanout = CostExpr::par(acting.iter().map(|&osd| {
            CostExpr::seq([
                self.perf
                    .node_to_node(primary_node, self.node_of(osd), payload),
                self.perf.disk_io(osd.0 as usize, payload),
            ])
        }));
        let cost = CostExpr::seq([
            ctx.label("client_xfer", client_leg),
            self.perf.request_cpu(primary_node, data_bytes),
            ctx.label("rep_fanout", fanout),
        ]);

        // Write-ahead (same contract as the slow path: after all checks,
        // before any replica mutates).
        if self.wal_active() {
            if let Err(e) = self.wal_append(ctx.pool, name, acting[0], ops) {
                return Some(Err(e));
            }
        }

        // Each replica mutates its own buffer in place. Replicas still
        // sharing a write fan-out's parent detach on first touch
        // (copy-on-write); once detached they stay unique, so steady-state
        // read-modify-write traffic never copies the full object again.
        self.metrics
            .bytes_copied
            .add(data_bytes * acting.len() as u64);
        for &osd in &acting {
            let mut store = self.osds[osd.0 as usize].write();
            if !store.contains(ctx.pool, name) {
                store.put(
                    ctx.pool,
                    name.clone(),
                    StoredObject::new(Payload::Full(Bytes::new())),
                );
            }
            let obj = store.get_mut(ctx.pool, name).expect("just ensured");
            let StoredObject {
                payload,
                xattrs,
                omap,
                holes,
                stored_bytes,
            } = obj;
            let d = match payload {
                Payload::Full(d) => d,
                Payload::Shard { .. } => return None, // corrupt; let slow path error
            };
            d.with_vec_mut(|data| {
                for op in ops {
                    match op {
                        TxOp::Write { offset, data: buf } => {
                            let end = *offset + buf.len() as u64;
                            if data.len() < end as usize {
                                data.resize(end as usize, 0);
                            }
                            data[*offset as usize..end as usize].copy_from_slice(buf);
                            holes.remove(*offset, end);
                        }
                        TxOp::PunchHole { offset, len } => {
                            let end = (*offset + *len).min(data.len() as u64);
                            if *offset < end {
                                data[*offset as usize..end as usize].fill(0);
                                holes.insert(*offset, end);
                            }
                        }
                        TxOp::SetXattr(k, v) => {
                            xattrs.insert(k.clone(), v.clone());
                        }
                        TxOp::RemoveXattr(k) => {
                            xattrs.remove(k);
                        }
                        TxOp::SetOmap(k, v) => {
                            omap.insert(k.clone(), v.clone());
                        }
                        TxOp::RemoveOmap(k) => {
                            omap.remove(k);
                        }
                        _ => unreachable!("filtered above"),
                    }
                }
            });
            *stored_bytes = (d.len() as u64).saturating_sub(holes.total().min(d.len() as u64));
        }
        Some(Ok(Timed::new((), cost)))
    }

    fn check_cap(&self, len: u64) -> Result<(), StoreError> {
        if len > self.object_size_cap {
            return Err(StoreError::ObjectTooLarge {
                requested: len,
                cap: self.object_size_cap,
            });
        }
        Ok(())
    }

    /// Writes the full object data (creating it if absent).
    ///
    /// # Errors
    ///
    /// See [`Cluster::transact`].
    pub fn write_full(
        &self,
        ctx: &IoCtx,
        name: &ObjectName,
        data: impl Into<Bytes>,
    ) -> Result<Timed<()>, StoreError> {
        self.transact(ctx, name, vec![TxOp::WriteFull(data.into())])
    }

    /// Writes `data` at `offset`, zero-filling any gap.
    ///
    /// # Errors
    ///
    /// See [`Cluster::transact`].
    pub fn write_at(
        &self,
        ctx: &IoCtx,
        name: &ObjectName,
        offset: u64,
        data: impl Into<Bytes>,
    ) -> Result<Timed<()>, StoreError> {
        self.transact(
            ctx,
            name,
            vec![TxOp::Write {
                offset,
                data: data.into(),
            }],
        )
    }

    /// Reads `len` bytes at `offset`.
    ///
    /// The returned buffer is a zero-copy view of the stored replica on
    /// replicated pools; EC reads materialise the gathered range.
    ///
    /// # Errors
    ///
    /// Fails if the object does not exist or the range exceeds its size.
    pub fn read_at(
        &self,
        ctx: &IoCtx,
        name: &ObjectName,
        offset: u64,
        len: u64,
    ) -> Result<Timed<Bytes>, StoreError> {
        // Fast path: replicated pools slice one replica without
        // reconstructing the logical object.
        let slice = {
            let st = self.state(ctx.pool)?;
            let fast = matches!(st.config.redundancy, Redundancy::Replicated(_));
            if fast {
                let holders = self.holders(ctx.pool, name);
                let holder = holders
                    .first()
                    .ok_or_else(|| StoreError::NoSuchObject(ctx.pool, name.clone()))?;
                let guard = self.osds[holder.0 as usize].read();
                let obj = guard.get(ctx.pool, name).expect("holder has object");
                match &obj.payload {
                    Payload::Full(data) => {
                        if offset + len > data.len() as u64 {
                            return Err(StoreError::ReadOutOfRange {
                                offset,
                                len,
                                object_size: data.len() as u64,
                            });
                        }
                        self.metrics.bytes_shared.add(len);
                        Some(data.slice(offset as usize..(offset + len) as usize))
                    }
                    Payload::Shard { .. } => None,
                }
            } else {
                None
            }
        };
        let slice = match slice {
            Some(s) => s,
            None => {
                let logical = self
                    .load_logical(ctx.pool, name)?
                    .ok_or_else(|| StoreError::NoSuchObject(ctx.pool, name.clone()))?;
                let size = logical.data.len() as u64;
                if offset + len > size {
                    return Err(StoreError::ReadOutOfRange {
                        offset,
                        len,
                        object_size: size,
                    });
                }
                self.metrics.bytes_copied.add(len);
                logical.data.slice(offset as usize..(offset + len) as usize)
            }
        };

        let st = self.state(ctx.pool)?;
        let acting = self.acting(ctx.pool, name)?;
        let primary = acting[0];
        let primary_node = self.node_of(primary);
        let cost = match st.config.redundancy {
            Redundancy::Replicated(_) => CostExpr::seq([
                self.perf.request_cpu(primary_node, len),
                ctx.label("disk_read", self.perf.disk_io(primary.0 as usize, len)),
                ctx.label(
                    "reply_xfer",
                    self.perf.client_to_node(ctx.client, primary_node, len),
                ),
            ]),
            Redundancy::Erasure { k, .. } => {
                // Read the k data shards covering the range in parallel,
                // gather at the primary, return to the client.
                let per_shard = len.div_ceil(k as u64).max(1);
                let gather = CostExpr::par(acting.iter().take(k).map(|&osd| {
                    CostExpr::seq([
                        self.perf.disk_io(osd.0 as usize, per_shard),
                        self.perf
                            .node_to_node(self.node_of(osd), primary_node, per_shard),
                    ])
                }));
                CostExpr::seq([
                    self.perf.request_cpu(primary_node, len),
                    ctx.label("ec_gather", gather),
                    ctx.label(
                        "reply_xfer",
                        self.perf.client_to_node(ctx.client, primary_node, len),
                    ),
                ])
            }
        };
        self.metrics.reads.inc();
        self.metrics.read_bytes.add(slice.len() as u64);
        Ok(Timed::new(slice, cost))
    }

    /// Reads the whole object.
    ///
    /// # Errors
    ///
    /// Fails if the object does not exist.
    pub fn read_full(&self, ctx: &IoCtx, name: &ObjectName) -> Result<Timed<Bytes>, StoreError> {
        let size = self
            .stat(ctx.pool, name)?
            .ok_or_else(|| StoreError::NoSuchObject(ctx.pool, name.clone()))?;
        self.read_at(ctx, name, 0, size)
    }

    /// Object size in bytes, or `None` if absent. Control-plane (no cost).
    ///
    /// # Errors
    ///
    /// Fails only for unknown pools.
    pub fn stat(&self, pool: PoolId, name: &ObjectName) -> Result<Option<u64>, StoreError> {
        self.state(pool)?;
        let holders = self.holders(pool, name);
        Ok(holders.first().and_then(|h| {
            self.osds[h.0 as usize]
                .read()
                .get(pool, name)
                .map(|o| o.payload.object_len())
        }))
    }

    /// Reads one xattr (metadata-sized I/O on the primary).
    ///
    /// Returns a shared view of the stored value — no map or value is
    /// cloned; the lookup happens under the holder's lock.
    ///
    /// # Errors
    ///
    /// Fails if the object does not exist.
    pub fn get_xattr(
        &self,
        ctx: &IoCtx,
        name: &ObjectName,
        key: &str,
    ) -> Result<Timed<Option<Bytes>>, StoreError> {
        let value = self
            .load_meta_value(ctx.pool, name, |obj| obj.xattrs.get(key).cloned())?
            .ok_or_else(|| StoreError::NoSuchObject(ctx.pool, name.clone()))?;
        let cost = self.metadata_read_cost(ctx, name)?;
        Ok(Timed::new(value, cost))
    }

    /// Reads one omap value (metadata-sized I/O on the primary).
    ///
    /// Returns a shared view of the stored value — no map or value is
    /// cloned; the lookup happens under the holder's lock.
    ///
    /// # Errors
    ///
    /// Fails if the object does not exist.
    pub fn get_omap(
        &self,
        ctx: &IoCtx,
        name: &ObjectName,
        key: &str,
    ) -> Result<Timed<Option<Bytes>>, StoreError> {
        let value = self
            .load_meta_value(ctx.pool, name, |obj| obj.omap.get(key).cloned())?
            .ok_or_else(|| StoreError::NoSuchObject(ctx.pool, name.clone()))?;
        let cost = self.metadata_read_cost(ctx, name)?;
        Ok(Timed::new(value, cost))
    }

    /// Runs `f` on any replica of the object under the holder's lock,
    /// avoiding whole-map clones for single-value metadata reads.
    /// `Ok(None)` means the object does not exist.
    fn load_meta_value<T>(
        &self,
        pool: PoolId,
        name: &ObjectName,
        f: impl FnOnce(&StoredObject) -> T,
    ) -> Result<Option<T>, StoreError> {
        self.state(pool)?;
        let holders = self.holders(pool, name);
        Ok(holders.first().map(|h| {
            let guard = self.osds[h.0 as usize].read();
            f(guard.get(pool, name).expect("holder has object"))
        }))
    }

    /// Reads the entire omap (control-plane helper used by scans; charged
    /// as one metadata read). Values in the returned map are shared views
    /// of the stored buffers.
    ///
    /// # Errors
    ///
    /// Fails if the object does not exist.
    pub fn omap_entries(
        &self,
        ctx: &IoCtx,
        name: &ObjectName,
    ) -> Result<Timed<BTreeMap<String, Bytes>>, StoreError> {
        let (_, omap) = self
            .load_metadata(ctx.pool, name)?
            .ok_or_else(|| StoreError::NoSuchObject(ctx.pool, name.clone()))?;
        let cost = self.metadata_read_cost(ctx, name)?;
        Ok(Timed::new(omap, cost))
    }

    /// Clones the metadata map structure from any replica (values are
    /// refcount bumps, not buffer copies).
    fn load_metadata(
        &self,
        pool: PoolId,
        name: &ObjectName,
    ) -> Result<Option<MetadataMaps>, StoreError> {
        self.state(pool)?;
        let holders = self.holders(pool, name);
        Ok(holders.first().map(|h| {
            let guard = self.osds[h.0 as usize].read();
            let obj = guard.get(pool, name).expect("holder has object");
            (obj.xattrs.clone(), obj.omap.clone())
        }))
    }

    fn metadata_read_cost(&self, ctx: &IoCtx, name: &ObjectName) -> Result<CostExpr, StoreError> {
        const META_IO: u64 = 4096;
        let acting = self.acting(ctx.pool, name)?;
        let primary = acting[0];
        Ok(ctx.label(
            "meta_read",
            CostExpr::seq([
                self.perf.disk_io(primary.0 as usize, META_IO),
                self.perf
                    .client_to_node(ctx.client, self.node_of(primary), META_IO),
            ]),
        ))
    }

    /// Deletes an object.
    ///
    /// # Errors
    ///
    /// Fails for unknown pools; deleting an absent object is a no-op.
    pub fn delete(&self, ctx: &IoCtx, name: &ObjectName) -> Result<Timed<()>, StoreError> {
        self.transact(ctx, name, vec![TxOp::Remove])
    }

    /// All object names in a pool (union across devices). Control-plane.
    ///
    /// # Errors
    ///
    /// Fails for unknown pools.
    pub fn list_objects(&self, pool: PoolId) -> Result<Vec<ObjectName>, StoreError> {
        self.state(pool)?;
        let mut names = BTreeSet::new();
        for osd in &self.osds {
            names.extend(osd.read().names_in_pool(pool));
        }
        Ok(names.into_iter().collect())
    }

    /// Capacity usage of one pool.
    ///
    /// # Errors
    ///
    /// Fails for unknown pools.
    pub fn usage(&self, pool: PoolId) -> Result<PoolUsage, StoreError> {
        self.state(pool)?;
        let mut usage = PoolUsage::default();
        let mut seen: BTreeSet<ObjectName> = BTreeSet::new();
        for osd in &self.osds {
            let guard = osd.read();
            for (p, name, obj) in guard.iter() {
                if p != pool {
                    continue;
                }
                if seen.insert(name.clone()) {
                    usage.objects += 1;
                    usage.logical_bytes += obj.payload.object_len();
                }
                usage.stored_bytes += obj.stored_bytes;
                usage.metadata_bytes += obj.metadata_bytes();
                usage.overhead_bytes += PER_OBJECT_OVERHEAD;
            }
        }
        Ok(usage)
    }

    /// Read-locks one device for iteration (used by the local-dedup
    /// baseline and the experiments' accounting): iterate the returned
    /// guard with [`Osd::iter`].
    ///
    /// # Errors
    ///
    /// Fails for unknown OSD ids.
    pub fn osd_objects(&self, osd: OsdId) -> Result<RwLockReadGuard<'_, Osd>, StoreError> {
        let idx = osd.0 as usize;
        if idx >= self.osds.len() {
            return Err(StoreError::NoSuchOsd(osd));
        }
        Ok(self.osds[idx].read())
    }

    /// Fails an OSD: marks it down in the map and wipes its device,
    /// simulating disk loss.
    ///
    /// # Panics
    ///
    /// Panics for unknown OSD ids.
    pub fn fail_osd(&mut self, osd: OsdId) {
        self.map.set_up(osd, false);
        self.osds[osd.0 as usize].write().wipe();
        if let Some(ev) = &self.events {
            ev.emit(
                Severity::Error,
                "cluster.osd",
                "osd_failed",
                vec![("osd", osd.0.to_string()), ("device", "wiped".to_string())],
            );
        }
    }

    /// Marks an OSD down without wiping it (temporary outage).
    ///
    /// # Panics
    ///
    /// Panics for unknown OSD ids.
    pub fn mark_down(&mut self, osd: OsdId) {
        self.map.set_up(osd, false);
        if let Some(ev) = &self.events {
            ev.emit(
                Severity::Warn,
                "cluster.osd",
                "osd_down",
                vec![("osd", osd.0.to_string())],
            );
        }
    }

    /// Brings an OSD back up (its device keeps whatever it held; run
    /// [`Cluster::recover`] to backfill).
    ///
    /// # Panics
    ///
    /// Panics for unknown OSD ids.
    pub fn revive_osd(&mut self, osd: OsdId) {
        self.map.set_up(osd, true);
        if let Some(ev) = &self.events {
            ev.emit(
                Severity::Info,
                "cluster.osd",
                "osd_up",
                vec![("osd", osd.0.to_string())],
            );
        }
    }

    /// Adds a brand-new OSD to `node` and returns its id.
    pub fn add_osd(&mut self, node: NodeId, weight: f64) -> OsdId {
        let id = self.map.add_osd(node, weight);
        self.osds.push(RwLock::new(Osd::new()));
        self.perf.add_disk(id.0 as usize);
        id
    }

    pub(crate) fn osd_store(&self, osd: OsdId) -> RwLockReadGuard<'_, Osd> {
        self.osds[osd.0 as usize].read()
    }

    pub(crate) fn osd_store_mut(&self, osd: OsdId) -> RwLockWriteGuard<'_, Osd> {
        self.osds[osd.0 as usize].write()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dedup_placement::FailureDomain;

    fn cluster() -> Cluster {
        ClusterBuilder::new().nodes(4).osds_per_node(4).build()
    }

    fn rep_pool(c: &mut Cluster) -> IoCtx {
        IoCtx::new(c.create_pool(PoolConfig::replicated("rep", 2)))
    }

    fn ec_pool(c: &mut Cluster) -> IoCtx {
        IoCtx::new(c.create_pool(PoolConfig::erasure("ec", 2, 1)))
    }

    #[test]
    fn write_read_round_trip_replicated() {
        let mut c = cluster();
        let ctx = rep_pool(&mut c);
        let name = ObjectName::new("obj");
        let data = vec![7u8; 10_000];
        let w = c.write_full(&ctx, &name, data.clone()).expect("write");
        assert!(!w.cost.is_nop());
        let r = c.read_full(&ctx, &name).expect("read");
        assert_eq!(r.value, data);
    }

    #[test]
    fn write_read_round_trip_erasure() {
        let mut c = cluster();
        let ctx = ec_pool(&mut c);
        let name = ObjectName::new("obj");
        let data: Vec<u8> = (0..10_001).map(|i| (i % 251) as u8).collect();
        let _ = c.write_full(&ctx, &name, data.clone()).expect("write");
        let r = c.read_full(&ctx, &name).expect("read");
        assert_eq!(r.value, data);
    }

    #[test]
    fn replicated_pool_stores_n_copies() {
        let mut c = cluster();
        let ctx = rep_pool(&mut c);
        let name = ObjectName::new("obj");
        let _ = c.write_full(&ctx, &name, vec![1u8; 1000]).expect("write");
        assert_eq!(c.holders(ctx.pool, &name).len(), 2);
        let usage = c.usage(ctx.pool).expect("usage");
        assert_eq!(usage.logical_bytes, 1000);
        assert_eq!(usage.stored_bytes, 2000);
        assert_eq!(usage.objects, 1);
    }

    #[test]
    fn ec_pool_stores_k_plus_m_shards() {
        let mut c = cluster();
        let ctx = ec_pool(&mut c);
        let name = ObjectName::new("obj");
        let _ = c.write_full(&ctx, &name, vec![1u8; 1000]).expect("write");
        assert_eq!(c.holders(ctx.pool, &name).len(), 3);
        let usage = c.usage(ctx.pool).expect("usage");
        // 1.5x raw overhead for 2+1.
        assert_eq!(usage.stored_bytes, 1500);
    }

    #[test]
    fn partial_write_zero_fills() {
        let mut c = cluster();
        let ctx = rep_pool(&mut c);
        let name = ObjectName::new("obj");
        let _ = c.write_at(&ctx, &name, 10, vec![9u8; 5]).expect("write");
        let r = c.read_full(&ctx, &name).expect("read");
        assert_eq!(r.value.len(), 15);
        assert_eq!(&r.value[..10], &[0u8; 10]);
        assert_eq!(&r.value[10..], &[9u8; 5]);
    }

    #[test]
    fn overwrite_at_offset_preserves_rest() {
        let mut c = cluster();
        let ctx = ec_pool(&mut c);
        let name = ObjectName::new("obj");
        let _ = c.write_full(&ctx, &name, vec![1u8; 100]).expect("write");
        let _ = c.write_at(&ctx, &name, 50, vec![2u8; 10]).expect("write");
        let r = c.read_full(&ctx, &name).expect("read");
        assert_eq!(&r.value[..50], &[1u8; 50]);
        assert_eq!(&r.value[50..60], &[2u8; 10]);
        assert_eq!(&r.value[60..], &[1u8; 40]);
    }

    #[test]
    fn transaction_is_atomic_bundle() {
        let mut c = cluster();
        let ctx = rep_pool(&mut c);
        let name = ObjectName::new("obj");
        let _ = c
            .transact(
                &ctx,
                &name,
                vec![
                    TxOp::WriteFull(vec![5u8; 64].into()),
                    TxOp::SetXattr("type".into(), b"metadata".to_vec().into()),
                    TxOp::SetOmap("entry.0".into(), b"chunkmap".to_vec().into()),
                ],
            )
            .expect("tx");
        let x = c.get_xattr(&ctx, &name, "type").expect("xattr");
        assert_eq!(x.value.as_deref(), Some(b"metadata".as_slice()));
        let o = c.get_omap(&ctx, &name, "entry.0").expect("omap");
        assert_eq!(o.value.as_deref(), Some(b"chunkmap".as_slice()));
    }

    #[test]
    fn metadata_is_on_every_replica() {
        let mut c = cluster();
        let ctx = rep_pool(&mut c);
        let name = ObjectName::new("obj");
        let _ = c
            .transact(
                &ctx,
                &name,
                vec![
                    TxOp::WriteFull(vec![1u8; 10].into()),
                    TxOp::SetXattr("refcount".into(), vec![2].into()),
                ],
            )
            .expect("tx");
        for h in c.holders(ctx.pool, &name) {
            let store = c.osd_store(h);
            let obj = store.get(ctx.pool, &name).expect("replica");
            assert_eq!(obj.xattrs.get("refcount").map(|b| &b[..]), Some(&[2u8][..]));
        }
    }

    #[test]
    fn read_out_of_range_errors() {
        let mut c = cluster();
        let ctx = rep_pool(&mut c);
        let name = ObjectName::new("obj");
        let _ = c.write_full(&ctx, &name, vec![0u8; 10]).expect("write");
        let err = c.read_at(&ctx, &name, 5, 10).expect_err("must fail");
        assert!(matches!(err, StoreError::ReadOutOfRange { .. }));
    }

    #[test]
    fn missing_object_errors() {
        let mut c = cluster();
        let ctx = rep_pool(&mut c);
        let err = c
            .read_full(&ctx, &ObjectName::new("ghost"))
            .expect_err("must fail");
        assert!(matches!(err, StoreError::NoSuchObject(..)));
    }

    #[test]
    fn unknown_pool_errors() {
        let c = cluster();
        assert!(matches!(
            c.usage(PoolId(99)),
            Err(StoreError::NoSuchPool(_))
        ));
    }

    #[test]
    fn delete_removes_all_replicas() {
        let mut c = cluster();
        let ctx = rep_pool(&mut c);
        let name = ObjectName::new("obj");
        let _ = c.write_full(&ctx, &name, vec![1u8; 100]).expect("write");
        let _ = c.delete(&ctx, &name).expect("delete");
        assert!(c.holders(ctx.pool, &name).is_empty());
        assert_eq!(c.stat(ctx.pool, &name).expect("stat"), None);
    }

    #[test]
    fn object_size_cap_enforced() {
        let mut c = ClusterBuilder::new().object_size_cap(1000).build();
        let ctx = rep_pool(&mut c);
        let err = c
            .write_at(&ctx, &ObjectName::new("big"), 2000, vec![1])
            .expect_err("must fail");
        assert!(matches!(err, StoreError::ObjectTooLarge { .. }));
    }

    #[test]
    fn compression_shrinks_stored_bytes() {
        let mut c = cluster();
        let pool = c.create_pool(PoolConfig::replicated("comp", 2).with_compression());
        let ctx = IoCtx::new(pool);
        let name = ObjectName::new("obj");
        let _ = c
            .write_full(&ctx, &name, vec![0u8; 100_000])
            .expect("write");
        let usage = c.usage(pool).expect("usage");
        assert_eq!(usage.logical_bytes, 100_000);
        assert!(
            usage.stored_bytes < 10_000,
            "zeros should compress: {}",
            usage.stored_bytes
        );
        // Data still reads back exactly.
        let r = c.read_full(&ctx, &name).expect("read");
        assert_eq!(r.value, vec![0u8; 100_000]);
    }

    #[test]
    fn list_objects_sorted_union() {
        let mut c = cluster();
        let ctx = rep_pool(&mut c);
        for n in ["b", "a", "c"] {
            let _ = c
                .write_full(&ctx, &ObjectName::new(n), vec![0u8; 8])
                .expect("write");
        }
        let names = c.list_objects(ctx.pool).expect("list");
        let strs: Vec<_> = names.iter().map(ObjectName::as_str).collect();
        assert_eq!(strs, vec!["a", "b", "c"]);
    }

    #[test]
    fn writes_spread_across_osds() {
        let mut c = cluster();
        let ctx = rep_pool(&mut c);
        for i in 0..200 {
            let _ = c
                .write_full(&ctx, &ObjectName::new(format!("o{i}")), vec![0u8; 64])
                .expect("write");
        }
        let loaded = (0..16)
            .filter(|&i| c.osd_store(OsdId(i)).stats().objects > 0)
            .count();
        assert!(loaded >= 14, "only {loaded}/16 OSDs used");
    }

    #[test]
    fn ec_write_cost_exceeds_replicated_for_partial_updates() {
        let mut c = cluster();
        let rep = rep_pool(&mut c);
        let ec = ec_pool(&mut c);
        let name = ObjectName::new("obj");
        let _ = c.write_full(&rep, &name, vec![1u8; 64 * 1024]).expect("w");
        let _ = c.write_full(&ec, &name, vec![1u8; 64 * 1024]).expect("w");
        // Partial 8KiB update in the middle.
        let t_rep = c
            .write_at(&rep, &name, 1024, vec![2u8; 8 * 1024])
            .expect("w");
        let t_ec = c
            .write_at(&ec, &name, 1024, vec![2u8; 8 * 1024])
            .expect("w");
        let mut perf = c.perf().pool.clone();
        let rep_done = perf.execute(SimTime::ZERO, &t_rep.cost);
        let ec_done = perf.execute(rep_done, &t_ec.cost).since(rep_done);
        assert!(
            ec_done.as_nanos() > rep_done.as_nanos(),
            "EC RMW {ec_done:?} should exceed replicated {rep_done:?}"
        );
    }

    #[test]
    fn degraded_replicated_pool_still_serves() {
        let mut c = ClusterBuilder::new().nodes(2).osds_per_node(1).build();
        let pool =
            c.create_pool(PoolConfig::replicated("r", 2).with_failure_domain(FailureDomain::Osd));
        let ctx = IoCtx::new(pool);
        let name = ObjectName::new("obj");
        let _ = c.write_full(&ctx, &name, vec![3u8; 100]).expect("write");
        c.mark_down(OsdId(0));
        // One OSD left: degraded but readable and writable.
        let r = c.read_full(&ctx, &name).expect("read");
        assert_eq!(r.value, vec![3u8; 100]);
        let _ = c
            .write_full(&ctx, &name, vec![4u8; 50])
            .expect("write degraded");
    }

    #[test]
    fn ec_pool_unavailable_below_width() {
        let mut c = ClusterBuilder::new().nodes(3).osds_per_node(1).build();
        let pool = c.create_pool(PoolConfig::erasure("e", 2, 1));
        let ctx = IoCtx::new(pool);
        c.mark_down(OsdId(0));
        let err = c
            .write_full(&ctx, &ObjectName::new("x"), vec![1u8; 10])
            .expect_err("EC needs k+m devices");
        assert!(matches!(err, StoreError::InsufficientOsds { .. }));
    }

    /// Build a WAL-attached cluster with a replicated and an EC pool, plus
    /// the shared backend so a test can crash/recover against it.
    fn wal_cluster() -> (
        Cluster,
        std::sync::Arc<crate::wal::MemWalBackend>,
        IoCtx,
        IoCtx,
    ) {
        let mut c = ClusterBuilder::new().nodes(4).osds_per_node(4).build();
        let rep = IoCtx::new(c.create_pool(PoolConfig::replicated("rep", 2)));
        let ec = IoCtx::new(c.create_pool(PoolConfig::erasure("ec", 2, 1)));
        let backend = crate::wal::MemWalBackend::shared();
        c.attach_wal(backend.clone());
        (c, backend, rep, ec)
    }

    #[test]
    fn wal_round_trip_checkpoint_and_log_tail() {
        let (c, backend, rep, ec) = wal_cluster();
        let a = ObjectName::new("a");
        let b = ObjectName::new("b");
        let e = ObjectName::new("e");
        let _ = c.write_full(&rep, &a, vec![7u8; 4096]).expect("write a");
        let _ = c
            .transact(
                &rep,
                &a,
                vec![
                    TxOp::SetXattr("refcount".into(), Bytes::copy_from_slice(b"3")),
                    TxOp::SetOmap("backref".into(), Bytes::copy_from_slice(b"x")),
                    TxOp::PunchHole {
                        offset: 1024,
                        len: 1024,
                    },
                ],
            )
            .expect("decorate a");
        let _ = c.write_full(&ec, &e, vec![9u8; 8192]).expect("write e");

        // Checkpoint captures everything so far; `b` lands in the log tail.
        let cp = c.wal_checkpoint().expect("checkpoint");
        assert_eq!(cp.objects, 2);
        assert!(cp.last_seq >= 3);
        let _ = c.write_full(&rep, &b, vec![5u8; 100]).expect("write b");
        let _ = c
            .transact(&rep, &a, vec![TxOp::Truncate(2048)])
            .expect("truncate a");

        // Fresh cluster, same shape and pool layout, same backend.
        let mut c2 = ClusterBuilder::new().nodes(4).osds_per_node(4).build();
        let rep2 = IoCtx::new(c2.create_pool(PoolConfig::replicated("rep", 2)));
        let ec2 = IoCtx::new(c2.create_pool(PoolConfig::erasure("ec", 2, 1)));
        assert_eq!(rep2.pool, rep.pool);
        assert_eq!(ec2.pool, ec.pool);
        c2.attach_wal(backend);
        let rec = c2.wal_recover().expect("recover");
        assert_eq!(rec.replay_errors, 0);
        assert_eq!(rec.torn_tails_dropped, 0);
        assert!(rec.checkpoint_records >= 2);
        assert!(rec.log_records_replayed >= 2);

        // Data, metadata, and hole structure all survive the round trip.
        let ra = c2.read_full(&rep2, &a).expect("read a").value;
        assert_eq!(ra.len(), 2048);
        assert!(ra[..1024].iter().all(|&x| x == 7));
        assert!(ra[1024..2048].iter().all(|&x| x == 0));
        assert_eq!(
            c2.get_xattr(&rep2, &a, "refcount").expect("xattr").value,
            Some(Bytes::copy_from_slice(b"3"))
        );
        assert_eq!(
            c2.read_full(&rep2, &b).expect("read b").value,
            vec![5u8; 100]
        );
        assert_eq!(
            c2.read_full(&ec2, &e).expect("read e").value,
            vec![9u8; 8192]
        );
    }

    #[test]
    fn wal_torn_tail_dropped_on_recovery() {
        let (c, backend, rep, _ec) = wal_cluster();
        let a = ObjectName::new("a");
        let b = ObjectName::new("b");
        let _ = c.write_full(&rep, &a, vec![1u8; 64]).expect("write a");
        // The next durable write tears mid-record: the append fails and so
        // does the transaction.
        backend.set_crash_plan(Some(crate::wal::CrashPlan {
            after: backend.durable_writes(),
            torn: true,
        }));
        let err = c.write_full(&rep, &b, vec![2u8; 64]).expect_err("crash");
        assert!(matches!(err, StoreError::Wal { .. }));
        assert!(backend.crashed());
        backend.set_crash_plan(None);

        let mut c2 = ClusterBuilder::new().nodes(4).osds_per_node(4).build();
        let rep2 = IoCtx::new(c2.create_pool(PoolConfig::replicated("rep", 2)));
        let _ec2 = IoCtx::new(c2.create_pool(PoolConfig::erasure("ec", 2, 1)));
        c2.attach_wal(backend);
        let rec = c2.wal_recover().expect("recover");
        assert_eq!(rec.torn_tails_dropped, 1);
        assert_eq!(rec.replay_errors, 0);
        // Committed prefix only: `a` is back, `b` never happened.
        assert_eq!(
            c2.read_full(&rep2, &a).expect("read a").value,
            vec![1u8; 64]
        );
        assert!(matches!(
            c2.read_full(&rep2, &b),
            Err(StoreError::NoSuchObject(..))
        ));
    }
}
