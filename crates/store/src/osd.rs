//! One object storage device: an object map with capacity statistics.

use std::collections::HashMap;

use dedup_placement::PoolId;
use serde::{Deserialize, Serialize};

use crate::object::{ObjectName, StoredObject};

/// Capacity statistics for one OSD.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct OsdStats {
    /// Number of object replicas/shards held.
    pub objects: u64,
    /// Physical payload bytes (post-compression).
    pub stored_bytes: u64,
    /// Metadata bytes (xattr + omap).
    pub metadata_bytes: u64,
}

/// One storage device's local object store.
///
/// An OSD knows nothing about placement: the cluster routes to it, it
/// stores whatever it is told. This mirrors the shared-nothing split in the
/// real system.
#[derive(Debug, Clone, Default)]
pub struct Osd {
    objects: HashMap<(PoolId, ObjectName), StoredObject>,
}

impl Osd {
    /// Creates an empty device.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or replaces an object replica, returning the previous one.
    pub fn put(
        &mut self,
        pool: PoolId,
        name: ObjectName,
        object: StoredObject,
    ) -> Option<StoredObject> {
        self.objects.insert((pool, name), object)
    }

    /// Borrows an object replica.
    pub fn get(&self, pool: PoolId, name: &ObjectName) -> Option<&StoredObject> {
        self.objects.get(&(pool, name.clone()))
    }

    /// Mutably borrows an object replica.
    pub fn get_mut(&mut self, pool: PoolId, name: &ObjectName) -> Option<&mut StoredObject> {
        self.objects.get_mut(&(pool, name.clone()))
    }

    /// Removes an object replica.
    pub fn remove(&mut self, pool: PoolId, name: &ObjectName) -> Option<StoredObject> {
        self.objects.remove(&(pool, name.clone()))
    }

    /// Whether the device holds a replica of the object.
    pub fn contains(&self, pool: PoolId, name: &ObjectName) -> bool {
        self.objects.contains_key(&(pool, name.clone()))
    }

    /// Iterates over everything on the device.
    pub fn iter(&self) -> impl Iterator<Item = (&(PoolId, ObjectName), &StoredObject)> {
        self.objects.iter()
    }

    /// Object names this device holds for one pool.
    pub fn names_in_pool(&self, pool: PoolId) -> Vec<ObjectName> {
        self.objects
            .keys()
            .filter(|(p, _)| *p == pool)
            .map(|(_, n)| n.clone())
            .collect()
    }

    /// Wipes the device (simulates losing the disk).
    pub fn wipe(&mut self) {
        self.objects.clear();
    }

    /// Computes capacity statistics.
    pub fn stats(&self) -> OsdStats {
        let mut s = OsdStats::default();
        for obj in self.objects.values() {
            s.objects += 1;
            s.stored_bytes += obj.stored_bytes;
            s.metadata_bytes += obj.metadata_bytes();
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::Payload;

    fn pool() -> PoolId {
        PoolId(1)
    }

    #[test]
    fn put_get_remove_round_trip() {
        let mut osd = Osd::new();
        let name = ObjectName::new("a");
        let obj = StoredObject::new(Payload::Full(vec![1, 2, 3]));
        assert!(osd.put(pool(), name.clone(), obj.clone()).is_none());
        assert_eq!(osd.get(pool(), &name), Some(&obj));
        assert!(osd.contains(pool(), &name));
        assert_eq!(osd.remove(pool(), &name), Some(obj));
        assert!(!osd.contains(pool(), &name));
    }

    #[test]
    fn pools_are_namespaced() {
        let mut osd = Osd::new();
        let name = ObjectName::new("same");
        osd.put(
            PoolId(1),
            name.clone(),
            StoredObject::new(Payload::Full(vec![1])),
        );
        osd.put(
            PoolId(2),
            name.clone(),
            StoredObject::new(Payload::Full(vec![2, 2])),
        );
        assert_eq!(osd.get(PoolId(1), &name).map(|o| o.stored_bytes), Some(1));
        assert_eq!(osd.get(PoolId(2), &name).map(|o| o.stored_bytes), Some(2));
        assert_eq!(osd.names_in_pool(PoolId(1)).len(), 1);
    }

    #[test]
    fn stats_sum_objects() {
        let mut osd = Osd::new();
        let mut a = StoredObject::new(Payload::Full(vec![0; 100]));
        a.xattrs.insert("k".into(), vec![0; 10]);
        osd.put(pool(), ObjectName::new("a"), a);
        osd.put(
            pool(),
            ObjectName::new("b"),
            StoredObject::new(Payload::Full(vec![0; 50])),
        );
        let s = osd.stats();
        assert_eq!(s.objects, 2);
        assert_eq!(s.stored_bytes, 150);
        assert_eq!(s.metadata_bytes, 11);
    }

    #[test]
    fn wipe_clears_everything() {
        let mut osd = Osd::new();
        osd.put(
            pool(),
            ObjectName::new("a"),
            StoredObject::new(Payload::Full(vec![1])),
        );
        osd.wipe();
        assert_eq!(osd.stats().objects, 0);
    }
}
