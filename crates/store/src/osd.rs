//! One object storage device: an object map with capacity statistics.

use std::collections::HashMap;

use dedup_placement::PoolId;
use serde::{Deserialize, Serialize};

use crate::object::{ObjectName, StoredObject};

/// Capacity statistics for one OSD.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct OsdStats {
    /// Number of object replicas/shards held.
    pub objects: u64,
    /// Physical payload bytes (post-compression).
    pub stored_bytes: u64,
    /// Metadata bytes (xattr + omap).
    pub metadata_bytes: u64,
}

/// One storage device's local object store.
///
/// An OSD knows nothing about placement: the cluster routes to it, it
/// stores whatever it is told. This mirrors the shared-nothing split in the
/// real system.
///
/// Objects are keyed pool-first so hot-path lookups borrow the caller's
/// [`ObjectName`] instead of cloning it into a composite key.
#[derive(Debug, Clone, Default)]
pub struct Osd {
    pools: HashMap<PoolId, HashMap<ObjectName, StoredObject>>,
}

impl Osd {
    /// Creates an empty device.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or replaces an object replica, returning the previous one.
    pub fn put(
        &mut self,
        pool: PoolId,
        name: ObjectName,
        object: StoredObject,
    ) -> Option<StoredObject> {
        self.pools.entry(pool).or_default().insert(name, object)
    }

    /// Borrows an object replica.
    pub fn get(&self, pool: PoolId, name: &ObjectName) -> Option<&StoredObject> {
        self.pools.get(&pool)?.get(name)
    }

    /// Mutably borrows an object replica.
    pub fn get_mut(&mut self, pool: PoolId, name: &ObjectName) -> Option<&mut StoredObject> {
        self.pools.get_mut(&pool)?.get_mut(name)
    }

    /// Removes an object replica.
    pub fn remove(&mut self, pool: PoolId, name: &ObjectName) -> Option<StoredObject> {
        let objects = self.pools.get_mut(&pool)?;
        let removed = objects.remove(name);
        if objects.is_empty() {
            self.pools.remove(&pool);
        }
        removed
    }

    /// Whether the device holds a replica of the object.
    pub fn contains(&self, pool: PoolId, name: &ObjectName) -> bool {
        self.pools
            .get(&pool)
            .is_some_and(|objects| objects.contains_key(name))
    }

    /// Iterates over everything on the device.
    pub fn iter(&self) -> impl Iterator<Item = (PoolId, &ObjectName, &StoredObject)> {
        self.pools
            .iter()
            .flat_map(|(&pool, objects)| objects.iter().map(move |(n, o)| (pool, n, o)))
    }

    /// Object names this device holds for one pool.
    pub fn names_in_pool(&self, pool: PoolId) -> Vec<ObjectName> {
        self.pools
            .get(&pool)
            .map(|objects| objects.keys().cloned().collect())
            .unwrap_or_default()
    }

    /// Wipes the device (simulates losing the disk).
    pub fn wipe(&mut self) {
        self.pools.clear();
    }

    /// Computes capacity statistics.
    pub fn stats(&self) -> OsdStats {
        let mut s = OsdStats::default();
        for objects in self.pools.values() {
            for obj in objects.values() {
                s.objects += 1;
                s.stored_bytes += obj.stored_bytes;
                s.metadata_bytes += obj.metadata_bytes();
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::Payload;

    fn pool() -> PoolId {
        PoolId(1)
    }

    #[test]
    fn put_get_remove_round_trip() {
        let mut osd = Osd::new();
        let name = ObjectName::new("a");
        let obj = StoredObject::new(Payload::Full(vec![1, 2, 3].into()));
        assert!(osd.put(pool(), name.clone(), obj.clone()).is_none());
        assert_eq!(osd.get(pool(), &name), Some(&obj));
        assert!(osd.contains(pool(), &name));
        assert_eq!(osd.remove(pool(), &name), Some(obj));
        assert!(!osd.contains(pool(), &name));
    }

    #[test]
    fn pools_are_namespaced() {
        let mut osd = Osd::new();
        let name = ObjectName::new("same");
        osd.put(
            PoolId(1),
            name.clone(),
            StoredObject::new(Payload::Full(vec![1].into())),
        );
        osd.put(
            PoolId(2),
            name.clone(),
            StoredObject::new(Payload::Full(vec![2, 2].into())),
        );
        assert_eq!(osd.get(PoolId(1), &name).map(|o| o.stored_bytes), Some(1));
        assert_eq!(osd.get(PoolId(2), &name).map(|o| o.stored_bytes), Some(2));
        assert_eq!(osd.names_in_pool(PoolId(1)).len(), 1);
    }

    #[test]
    fn stats_sum_objects() {
        let mut osd = Osd::new();
        let mut a = StoredObject::new(Payload::Full(vec![0; 100].into()));
        a.xattrs.insert("k".into(), vec![0; 10].into());
        osd.put(pool(), ObjectName::new("a"), a);
        osd.put(
            pool(),
            ObjectName::new("b"),
            StoredObject::new(Payload::Full(vec![0; 50].into())),
        );
        let s = osd.stats();
        assert_eq!(s.objects, 2);
        assert_eq!(s.stored_bytes, 150);
        assert_eq!(s.metadata_bytes, 11);
    }

    #[test]
    fn wipe_clears_everything() {
        let mut osd = Osd::new();
        osd.put(
            pool(),
            ObjectName::new("a"),
            StoredObject::new(Payload::Full(vec![1].into())),
        );
        osd.wipe();
        assert_eq!(osd.stats().objects, 0);
    }

    #[test]
    fn empty_pool_map_is_pruned_on_remove() {
        let mut osd = Osd::new();
        let name = ObjectName::new("only");
        osd.put(
            pool(),
            name.clone(),
            StoredObject::new(Payload::Full(vec![1].into())),
        );
        osd.remove(pool(), &name);
        assert_eq!(osd.iter().count(), 0);
        assert!(osd.names_in_pool(pool()).is_empty());
    }
}
