//! A shared-nothing, scale-out object store data plane (the "RADOS-like"
//! substrate the paper's deduplication layer is built on).
//!
//! Everything the dedup design relies on from Ceph is reproduced here:
//!
//! * **Decentralized placement** — any object name maps to devices through
//!   `dedup-placement`'s hash/straw2 pipeline; no metadata server exists.
//! * **Pools** with independent redundancy policy: primary-copy
//!   [`Redundancy::Replicated`] or [`Redundancy::Erasure`] (Reed–Solomon),
//!   plus optional at-rest compression (the Btrfs feature of paper §6.4.3).
//! * **Self-contained objects** — data plus `xattr` and `omap` metadata
//!   carried with the object, so *any* extra state a layer above attaches
//!   (chunk maps, reference counts) is replicated, recovered, and rebalanced
//!   by the ordinary machinery with zero special cases.
//! * **Object transactions** — atomic multi-op updates to a single object,
//!   the consistency primitive of paper §4.6.
//! * **Failure handling** — OSD failure, recovery (re-replication /
//!   shard rebuild), re-addition with backfill, and scrub.
//!
//! Every I/O returns a [`Timed`] value carrying a [`dedup_sim::CostExpr`]
//! so callers can charge the virtual-time performance model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod error;
mod health;
mod metrics;
mod object;
mod osd;
mod perf;
mod pool;
mod recovery;
mod wal;

pub use cluster::{
    Cluster, ClusterBuilder, IoCtx, Timed, TxOp, WalCheckpointReport, WalManifestSummary,
    WalRecoveryReport,
};
pub use error::StoreError;
pub use health::{OsdHealth, WalHealth};
pub use object::{ObjectName, Payload, RangeSet, StoredObject, PER_OBJECT_OVERHEAD};
pub use osd::{Osd, OsdStats};
pub use perf::{ClientId, PerfConfig, PerfTopology};
pub use pool::{PoolConfig, PoolUsage, Redundancy};
pub use recovery::RecoveryReport;
pub use wal::{
    crc32, decode_records, CrashPlan, MemWalBackend, WalBackend, WalManifest, WalRecord,
    WAL_MANIFEST_MAGIC, WAL_MANIFEST_VERSION, WAL_RECORD_VERSION,
};

pub use dedup_obs::Registry;
