//! Self-contained objects: data payload plus xattr/omap metadata.

use std::collections::BTreeMap;
use std::fmt;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// Fixed per-object metadata overhead in bytes, matching the paper's note
/// that "Ceph's object has its own metadata at least 512 bytes" (§5).
pub const PER_OBJECT_OVERHEAD: u64 = 512;

/// An object name within a pool.
///
/// Backed by `Arc<str>`: names travel through dirty queues, hitsets, and
/// flush batches and get cloned on every hop, so cloning is a refcount
/// bump, not a heap copy. Ordering, hashing, and equality all delegate to
/// the underlying string, as they did when this was a plain `String`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectName(std::sync::Arc<str>);

impl ObjectName {
    /// Creates a name.
    ///
    /// # Panics
    ///
    /// Panics if `name` is empty.
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        assert!(!name.is_empty(), "object names must be non-empty");
        ObjectName(name.into())
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The name as bytes (hash input for placement).
    pub fn as_bytes(&self) -> &[u8] {
        self.0.as_bytes()
    }
}

impl fmt::Display for ObjectName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ObjectName {
    fn from(s: &str) -> Self {
        ObjectName::new(s)
    }
}

impl From<String> for ObjectName {
    fn from(s: String) -> Self {
        ObjectName::new(s)
    }
}

/// What one OSD physically holds for an object: a full copy (replicated
/// pools) or one erasure-coded shard.
///
/// Payload bytes are [`Bytes`]: replicas and shards produced by one write
/// fan-out all share the writer's parent allocation, and reads hand back
/// refcounted sub-views instead of fresh vectors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Payload {
    /// Entire object data.
    Full(Bytes),
    /// One Reed–Solomon shard of the object.
    Shard {
        /// Shard index in `[0, k + m)`.
        index: u8,
        /// Logical length of the whole object (shards are padded).
        object_len: u64,
        /// Shard bytes.
        bytes: Bytes,
    },
}

impl Payload {
    /// Bytes physically occupied by this payload before compression.
    pub fn stored_len(&self) -> u64 {
        match self {
            Payload::Full(b) => b.len() as u64,
            Payload::Shard { bytes, .. } => bytes.len() as u64,
        }
    }

    /// Logical object length this payload implies.
    pub fn object_len(&self) -> u64 {
        match self {
            Payload::Full(b) => b.len() as u64,
            Payload::Shard { object_len, .. } => *object_len,
        }
    }
}

/// A set of non-overlapping byte ranges, used to track punched holes in
/// sparse objects. Hole bytes read as zero and occupy no physical space.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RangeSet {
    /// Maps range start → range end (exclusive); ranges never overlap or
    /// touch.
    ranges: BTreeMap<u64, u64>,
}

impl RangeSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `[start, end)`, merging with overlapping/adjacent ranges.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn insert(&mut self, start: u64, end: u64) {
        assert!(start <= end, "inverted range {start}..{end}");
        if start == end {
            return;
        }
        let mut new_start = start;
        let mut new_end = end;
        // Absorb any range overlapping or adjacent to [start, end).
        let overlapping: Vec<u64> = self
            .ranges
            .range(..=end)
            .filter(|&(_, &e)| e >= start)
            .map(|(&s, _)| s)
            .collect();
        for s in overlapping {
            let e = self.ranges.remove(&s).expect("key just found");
            new_start = new_start.min(s);
            new_end = new_end.max(e);
        }
        self.ranges.insert(new_start, new_end);
    }

    /// Removes `[start, end)` from the set, splitting ranges as needed.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn remove(&mut self, start: u64, end: u64) {
        assert!(start <= end, "inverted range {start}..{end}");
        if start == end {
            return;
        }
        let affected: Vec<(u64, u64)> = self
            .ranges
            .range(..end)
            .filter(|&(_, &e)| e > start)
            .map(|(&s, &e)| (s, e))
            .collect();
        for (s, e) in affected {
            self.ranges.remove(&s);
            if s < start {
                self.ranges.insert(s, start);
            }
            if e > end {
                self.ranges.insert(end, e);
            }
        }
    }

    /// Drops everything at or beyond `at` (object truncation).
    pub fn truncate(&mut self, at: u64) {
        self.remove(at, u64::MAX);
    }

    /// Removes all ranges.
    pub fn clear(&mut self) {
        self.ranges.clear();
    }

    /// Total bytes covered.
    pub fn total(&self) -> u64 {
        self.ranges.iter().map(|(s, e)| e - s).sum()
    }

    /// Whether `offset` falls inside a range.
    pub fn contains(&self, offset: u64) -> bool {
        self.ranges
            .range(..=offset)
            .next_back()
            .is_some_and(|(_, &e)| e > offset)
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Iterates `(start, end)` pairs in order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.ranges.iter().map(|(&s, &e)| (s, e))
    }
}

/// One object replica/shard as stored on an OSD: payload + metadata.
///
/// The metadata maps (`xattrs`, `omap`) are carried on **every** replica, so
/// whatever a layer above stores there enjoys the same redundancy as the
/// data — the paper's *self-contained object* (§3.2, Fig. 7).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredObject {
    /// Data payload (full copy or EC shard).
    pub payload: Payload,
    /// Small named attributes (chunk-map headers, reference counts...).
    /// Values are shared buffers: metadata reads alias them for free.
    pub xattrs: BTreeMap<String, Bytes>,
    /// Sorted key-value metadata (chunk-map entries, back references...).
    pub omap: BTreeMap<String, Bytes>,
    /// Punched holes in the logical object: ranges that read as zero and
    /// occupy no space (cache eviction uses this).
    pub holes: RangeSet,
    /// Physical bytes after sparseness and at-rest compression; at most the
    /// raw payload size.
    pub stored_bytes: u64,
}

impl StoredObject {
    /// Creates an object with the given payload and no metadata.
    pub fn new(payload: Payload) -> Self {
        let stored_bytes = payload.stored_len();
        StoredObject {
            payload,
            xattrs: BTreeMap::new(),
            omap: BTreeMap::new(),
            holes: RangeSet::new(),
            stored_bytes,
        }
    }

    /// Total bytes of xattr and omap metadata (keys + values).
    pub fn metadata_bytes(&self) -> u64 {
        let x: usize = self
            .xattrs
            .iter()
            .map(|(k, v)| k.len() + v.len())
            .sum::<usize>();
        let o: usize = self
            .omap
            .iter()
            .map(|(k, v)| k.len() + v.len())
            .sum::<usize>();
        (x + o) as u64
    }

    /// Physical footprint of this replica: stored payload + metadata +
    /// fixed per-object overhead.
    pub fn footprint(&self) -> u64 {
        self.stored_bytes + self.metadata_bytes() + PER_OBJECT_OVERHEAD
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_round_trips() {
        let n = ObjectName::new("obj-1");
        assert_eq!(n.as_str(), "obj-1");
        assert_eq!(n.as_bytes(), b"obj-1");
        assert_eq!(n.to_string(), "obj-1");
        assert_eq!(ObjectName::from("x"), ObjectName::new("x"));
    }

    #[test]
    fn name_clone_shares_the_allocation() {
        let n = ObjectName::new("shared");
        let c = n.clone();
        assert_eq!(n, c);
        // Same pointer: a clone is a refcount bump, not a copy.
        assert!(std::ptr::eq(n.as_str(), c.as_str()));
    }

    #[test]
    fn name_ordering_and_hashing_match_strings() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let a = ObjectName::new("aardvark");
        let b = ObjectName::new("bobcat");
        assert!(a < b, "Ord delegates to the string");
        let hash = |n: &ObjectName| {
            let mut h = DefaultHasher::new();
            n.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&ObjectName::new("aardvark")));
        let mut set = std::collections::HashSet::new();
        set.insert(a.clone());
        assert!(set.contains(&ObjectName::new("aardvark")));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_name_rejected() {
        ObjectName::new("");
    }

    #[test]
    fn payload_lengths() {
        let full = Payload::Full(vec![0; 10].into());
        assert_eq!(full.stored_len(), 10);
        assert_eq!(full.object_len(), 10);
        let shard = Payload::Shard {
            index: 1,
            object_len: 100,
            bytes: vec![0; 50].into(),
        };
        assert_eq!(shard.stored_len(), 50);
        assert_eq!(shard.object_len(), 100);
    }

    #[test]
    fn metadata_bytes_counts_keys_and_values() {
        let mut o = StoredObject::new(Payload::Full(vec![1, 2, 3].into()));
        assert_eq!(o.metadata_bytes(), 0);
        o.xattrs.insert("ab".into(), vec![0; 8].into());
        o.omap.insert("key".into(), vec![0; 5].into());
        assert_eq!(o.metadata_bytes(), 2 + 8 + 3 + 5);
    }

    #[test]
    fn footprint_includes_overhead() {
        let o = StoredObject::new(Payload::Full(vec![0; 100].into()));
        assert_eq!(o.footprint(), 100 + PER_OBJECT_OVERHEAD);
    }

    #[test]
    fn rangeset_insert_merges() {
        let mut r = RangeSet::new();
        r.insert(10, 20);
        r.insert(30, 40);
        assert_eq!(r.total(), 20);
        r.insert(15, 35); // bridges both
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![(10, 40)]);
        r.insert(40, 50); // adjacent merges
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![(10, 50)]);
    }

    #[test]
    fn rangeset_remove_splits() {
        let mut r = RangeSet::new();
        r.insert(0, 100);
        r.remove(40, 60);
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![(0, 40), (60, 100)]);
        assert_eq!(r.total(), 80);
        r.remove(0, 1000);
        assert!(r.is_empty());
    }

    #[test]
    fn rangeset_contains_and_truncate() {
        let mut r = RangeSet::new();
        r.insert(10, 20);
        assert!(r.contains(10));
        assert!(r.contains(19));
        assert!(!r.contains(20));
        assert!(!r.contains(9));
        r.insert(50, 80);
        r.truncate(60);
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![(10, 20), (50, 60)]);
    }

    #[test]
    fn rangeset_empty_insert_is_noop() {
        let mut r = RangeSet::new();
        r.insert(5, 5);
        assert!(r.is_empty());
        r.remove(1, 1);
        assert!(r.is_empty());
    }
}

#[cfg(test)]
mod rangeset_proptests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        Insert(u64, u64),
        Remove(u64, u64),
        Truncate(u64),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u64..256, 0u64..256).prop_map(|(a, b)| Op::Insert(a.min(b), a.max(b))),
            (0u64..256, 0u64..256).prop_map(|(a, b)| Op::Remove(a.min(b), a.max(b))),
            (0u64..256).prop_map(Op::Truncate),
        ]
    }

    proptest! {
        /// RangeSet agrees with a per-byte reference model through any
        /// sequence of inserts, removes, and truncates, and keeps its
        /// internal ranges disjoint and sorted.
        #[test]
        fn matches_bitset_model(ops in proptest::collection::vec(op_strategy(), 0..40)) {
            let mut set = RangeSet::new();
            let mut model = [false; 256];
            for op in ops {
                match op {
                    Op::Insert(a, b) => {
                        set.insert(a, b);
                        for bit in model.iter_mut().take(b as usize).skip(a as usize) {
                            *bit = true;
                        }
                    }
                    Op::Remove(a, b) => {
                        set.remove(a, b);
                        for bit in model.iter_mut().take(b as usize).skip(a as usize) {
                            *bit = false;
                        }
                    }
                    Op::Truncate(at) => {
                        set.truncate(at);
                        for bit in model.iter_mut().skip(at as usize) {
                            *bit = false;
                        }
                    }
                }
                // Contains agrees byte by byte.
                for (i, &bit) in model.iter().enumerate() {
                    prop_assert_eq!(set.contains(i as u64), bit, "byte {}", i);
                }
                // Total agrees.
                let expect = model.iter().filter(|&&b| b).count() as u64;
                prop_assert_eq!(set.total(), expect);
                // Ranges disjoint, sorted, non-adjacent.
                let ranges: Vec<_> = set.iter().collect();
                for w in ranges.windows(2) {
                    prop_assert!(w[0].1 < w[1].0, "overlapping/adjacent ranges");
                }
                for &(s, e) in &ranges {
                    prop_assert!(s < e, "empty range stored");
                }
            }
        }
    }
}
