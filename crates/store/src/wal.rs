//! Per-OSD write-ahead logging: record framing, checkpoint segments, the
//! MANIFEST, and the pluggable [`WalBackend`] that owns the stable bytes.
//!
//! Every committed object transaction is appended — *before* any replica
//! mutates — to the log of the object's primary OSD as one CRC32-framed
//! [`WalRecord`]. A checkpoint compacts the logs: each pool's live objects
//! are re-encoded as synthetic records (seq 0) into immutable segment
//! files, a MANIFEST naming those segments replaces the old one
//! atomically, and the per-OSD logs are truncated. Recovery is the
//! inverse: apply the MANIFEST's segments, then merge the per-OSD log
//! tails in sequence order and replay them through the ordinary transact
//! path. A torn record (half-written append at the crash instant) fails
//! its CRC and drops the rest of that log's tail, exactly like a real
//! commit log.
//!
//! Record framing (after the strata-core audit shape, SNIPPETS.md §3):
//!
//! ```text
//! [len: u32 LE] [version: u8] [payload] [crc32: u32 LE]
//!     len  = 1 + payload.len() + 4  (version through crc)
//!     crc  = IEEE CRC-32 over version + payload
//! payload  = seq u64 | pool u32 | name str | op count u32 | ops...
//! ```
//!
//! The backend is a trait so the same data plane can later sit on a real
//! filesystem; the in-tree [`MemWalBackend`] is deterministic and counts
//! every durable write on a [`FsyncSequencer`], which is what lets the
//! crash harness enumerate "kill the store at write point k" exhaustively.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use dedup_placement::PoolId;
use dedup_sim::{FsyncRecord, FsyncSequencer};
use parking_lot::Mutex;

use crate::cluster::TxOp;
use crate::error::StoreError;
use crate::object::ObjectName;

/// Format version of a framed WAL record.
pub const WAL_RECORD_VERSION: u8 = 1;
/// Magic prefix of an encoded MANIFEST ("WALM").
pub const WAL_MANIFEST_MAGIC: u32 = 0x5741_4C4D;
/// Format version of the MANIFEST.
pub const WAL_MANIFEST_VERSION: u8 = 1;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE), hand-rolled: the workspace is offline, so no crc32fast.

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC-32 of `data` (the checksum framing every record and MANIFEST).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Little-endian put/take helpers.

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.pos.checked_add(n).ok_or("length overflow")?;
        let s = self.buf.get(self.pos..end).ok_or("record truncated")?;
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn bytes(&mut self) -> Result<&'a [u8], String> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    fn str(&mut self) -> Result<String, String> {
        let raw = self.bytes()?;
        String::from_utf8(raw.to_vec()).map_err(|_| "non-utf8 string".to_string())
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// ---------------------------------------------------------------------------
// TxOp codec.

fn encode_ops(ops: &[TxOp], out: &mut Vec<u8>) {
    put_u32(out, ops.len() as u32);
    for op in ops {
        match op {
            TxOp::WriteFull(data) => {
                out.push(0);
                put_bytes(out, data);
            }
            TxOp::Write { offset, data } => {
                out.push(1);
                put_u64(out, *offset);
                put_bytes(out, data);
            }
            TxOp::Truncate(len) => {
                out.push(2);
                put_u64(out, *len);
            }
            TxOp::SetXattr(k, v) => {
                out.push(3);
                put_str(out, k);
                put_bytes(out, v);
            }
            TxOp::RemoveXattr(k) => {
                out.push(4);
                put_str(out, k);
            }
            TxOp::SetOmap(k, v) => {
                out.push(5);
                put_str(out, k);
                put_bytes(out, v);
            }
            TxOp::RemoveOmap(k) => {
                out.push(6);
                put_str(out, k);
            }
            TxOp::PunchHole { offset, len } => {
                out.push(7);
                put_u64(out, *offset);
                put_u64(out, *len);
            }
            TxOp::Remove => out.push(8),
        }
    }
}

fn decode_ops(r: &mut Reader<'_>) -> Result<Vec<TxOp>, String> {
    let count = r.u32()? as usize;
    let mut ops = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let op = match r.u8()? {
            0 => TxOp::WriteFull(Bytes::copy_from_slice(r.bytes()?)),
            1 => TxOp::Write {
                offset: r.u64()?,
                data: Bytes::copy_from_slice(r.bytes()?),
            },
            2 => TxOp::Truncate(r.u64()?),
            3 => TxOp::SetXattr(r.str()?, Bytes::copy_from_slice(r.bytes()?)),
            4 => TxOp::RemoveXattr(r.str()?),
            5 => TxOp::SetOmap(r.str()?, Bytes::copy_from_slice(r.bytes()?)),
            6 => TxOp::RemoveOmap(r.str()?),
            7 => TxOp::PunchHole {
                offset: r.u64()?,
                len: r.u64()?,
            },
            8 => TxOp::Remove,
            tag => return Err(format!("unknown op tag {tag}")),
        };
        ops.push(op);
    }
    Ok(ops)
}

// ---------------------------------------------------------------------------
// Records.

/// One logged transaction: everything needed to replay it verbatim
/// through [`Cluster::transact`](crate::Cluster::transact).
///
/// `seq` is globally monotone across all OSD logs (one atomic counter),
/// so recovery merges the per-OSD tails by sorting on it. Checkpoint
/// segments reuse the same record shape with `seq == 0`: a checkpoint is
/// just a compacted WAL.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Global sequence number (0 for synthetic checkpoint records).
    pub seq: u64,
    /// Pool the transaction targeted.
    pub pool: PoolId,
    /// Object the transaction targeted.
    pub name: ObjectName,
    /// The transaction body, exactly as submitted.
    pub ops: Vec<TxOp>,
}

impl WalRecord {
    /// Encodes the record with its length/version/CRC framing.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(64);
        put_u64(&mut payload, self.seq);
        put_u32(&mut payload, self.pool.0);
        put_str(&mut payload, self.name.as_str());
        encode_ops(&self.ops, &mut payload);

        let mut out = Vec::with_capacity(payload.len() + 9);
        put_u32(&mut out, (1 + payload.len() + 4) as u32);
        out.push(WAL_RECORD_VERSION);
        out.extend_from_slice(&payload);
        let crc = crc32(&out[4..]);
        put_u32(&mut out, crc);
        out
    }

    fn decode_payload(payload: &[u8]) -> Result<WalRecord, String> {
        let mut r = Reader::new(payload);
        let seq = r.u64()?;
        let pool = PoolId(r.u32()?);
        let name = ObjectName::new(r.str()?);
        let ops = decode_ops(&mut r)?;
        if !r.done() {
            return Err("trailing bytes in record payload".into());
        }
        Ok(WalRecord {
            seq,
            pool,
            name,
            ops,
        })
    }
}

/// Parses a log (or checkpoint segment) into records. Parsing stops at the
/// first frame that is truncated, fails its CRC, or does not decode — the
/// torn tail a crash mid-append leaves behind — and the second value says
/// whether such a tail was dropped.
pub fn decode_records(buf: &[u8]) -> (Vec<WalRecord>, bool) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < buf.len() {
        let Some(header) = buf.get(pos..pos + 4) else {
            return (records, true);
        };
        let len = u32::from_le_bytes(header.try_into().unwrap()) as usize;
        if len < 5 {
            return (records, true);
        }
        let Some(frame) = buf.get(pos + 4..pos + 4 + len) else {
            return (records, true);
        };
        let (body, crc_bytes) = frame.split_at(len - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        if crc32(body) != stored || body[0] != WAL_RECORD_VERSION {
            return (records, true);
        }
        match WalRecord::decode_payload(&body[1..]) {
            Ok(rec) => records.push(rec),
            Err(_) => return (records, true),
        }
        pos += 4 + len;
    }
    (records, false)
}

// ---------------------------------------------------------------------------
// MANIFEST.

/// The checkpoint MANIFEST: which segment files hold the compacted state
/// and which log sequence numbers they cover.
///
/// The MANIFEST is replaced atomically (old or new, never torn), so it is
/// the single source of truth at recovery: records with `seq <
/// last_seq` live in the named segments; anything newer is in the per-OSD
/// log tails.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WalManifest {
    /// Checkpoint generation (monotone).
    pub epoch: u64,
    /// First sequence number *not* covered by the segments.
    pub last_seq: u64,
    /// Segment file names, one per pool.
    pub segments: Vec<String>,
}

impl WalManifest {
    /// Encodes the MANIFEST with magic, version, and trailing CRC.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        put_u32(&mut out, WAL_MANIFEST_MAGIC);
        out.push(WAL_MANIFEST_VERSION);
        put_u64(&mut out, self.epoch);
        put_u64(&mut out, self.last_seq);
        put_u32(&mut out, self.segments.len() as u32);
        for s in &self.segments {
            put_str(&mut out, s);
        }
        let crc = crc32(&out);
        put_u32(&mut out, crc);
        out
    }

    /// Decodes and verifies a MANIFEST.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Wal`] on a short buffer, bad magic/version,
    /// or CRC mismatch — recovery treats any of those as fatal, because
    /// the atomic-replace protocol promises the MANIFEST is never torn.
    pub fn decode(buf: &[u8]) -> Result<WalManifest, StoreError> {
        let wal_err = |detail: &str| StoreError::Wal {
            detail: format!("manifest: {detail}"),
        };
        if buf.len() < 4 {
            return Err(wal_err("truncated"));
        }
        let (body, crc_bytes) = buf.split_at(buf.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        if crc32(body) != stored {
            return Err(wal_err("crc mismatch"));
        }
        let mut r = Reader::new(body);
        let parse = |e: String| StoreError::Wal {
            detail: format!("manifest: {e}"),
        };
        if r.u32().map_err(parse)? != WAL_MANIFEST_MAGIC {
            return Err(wal_err("bad magic"));
        }
        if r.u8().map_err(parse)? != WAL_MANIFEST_VERSION {
            return Err(wal_err("unsupported version"));
        }
        let epoch = r.u64().map_err(parse)?;
        let last_seq = r.u64().map_err(parse)?;
        let count = r.u32().map_err(parse)? as usize;
        let mut segments = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            segments.push(r.str().map_err(parse)?);
        }
        if !r.done() {
            return Err(wal_err("trailing bytes"));
        }
        Ok(WalManifest {
            epoch,
            last_seq,
            segments,
        })
    }
}

// ---------------------------------------------------------------------------
// Backend.

/// Stable storage for the durability plane.
///
/// The four write methods are *durable points*: when one returns `Ok`, a
/// crash immediately after must preserve the write. `replace_manifest` is
/// additionally atomic — after a crash the old or the new MANIFEST is
/// read back, never a torn mix. Read methods are only used at recovery.
pub trait WalBackend: std::fmt::Debug + Send + Sync {
    /// Durably appends one framed record to OSD `osd`'s active log.
    ///
    /// # Errors
    ///
    /// Fails when stable storage is gone (for the in-memory shim: the
    /// simulated crash point was reached).
    fn append(&self, osd: usize, record: &[u8]) -> Result<(), StoreError>;

    /// Durably truncates OSD `osd`'s log (after a checkpoint covers it).
    ///
    /// # Errors
    ///
    /// Fails when stable storage is gone.
    fn truncate_log(&self, osd: usize) -> Result<(), StoreError>;

    /// Durably writes an immutable checkpoint segment file.
    ///
    /// # Errors
    ///
    /// Fails when stable storage is gone.
    fn write_segment(&self, name: &str, data: &[u8]) -> Result<(), StoreError>;

    /// Atomically replaces the MANIFEST.
    ///
    /// # Errors
    ///
    /// Fails when stable storage is gone; on failure the previous
    /// MANIFEST is still intact.
    fn replace_manifest(&self, data: &[u8]) -> Result<(), StoreError>;

    /// Reads back OSD `osd`'s log (empty if never written).
    fn read_log(&self, osd: usize) -> Vec<u8>;

    /// Reads back a checkpoint segment.
    fn read_segment(&self, name: &str) -> Option<Vec<u8>>;

    /// Reads back the current MANIFEST, if a checkpoint ever completed.
    fn read_manifest(&self) -> Option<Vec<u8>>;
}

/// Where in the durable-write sequence a simulated crash fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// The durable write holding this [`FsyncSequencer`] ticket fails;
    /// every later one fails too (the process is dead).
    pub after: u64,
    /// When set, the failing *append* leaves a half-written record on the
    /// log — the torn-tail case recovery must drop by CRC.
    pub torn: bool,
}

#[derive(Debug, Default)]
struct MemWalFiles {
    logs: Vec<Vec<u8>>,
    segments: BTreeMap<String, Vec<u8>>,
    manifest: Option<Vec<u8>>,
}

enum DurableOutcome {
    Committed,
    CrashClean,
    CrashTorn,
}

/// Deterministic in-memory [`WalBackend`] with crash injection.
///
/// Every durable write claims a ticket from an [`FsyncSequencer`]; a
/// [`CrashPlan`] makes the write holding ticket `after` (and everything
/// later) fail, optionally leaving a torn record. This is the offline
/// stand-in for a real log directory, and the instrument the crash
/// harness drives.
#[derive(Debug)]
pub struct MemWalBackend {
    files: Mutex<MemWalFiles>,
    sequencer: FsyncSequencer,
    plan: Mutex<Option<CrashPlan>>,
    crashed: AtomicBool,
}

impl Default for MemWalBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl MemWalBackend {
    /// Creates an empty backend with no crash planned.
    pub fn new() -> Self {
        MemWalBackend {
            files: Mutex::new(MemWalFiles::default()),
            sequencer: FsyncSequencer::new(),
            plan: Mutex::new(None),
            crashed: AtomicBool::new(false),
        }
    }

    /// Shared handle, the shape [`Cluster::attach_wal`](crate::Cluster::attach_wal) takes.
    pub fn shared() -> Arc<MemWalBackend> {
        Arc::new(Self::new())
    }

    /// Arms (or disarms, with `None`) the crash plan and revives the
    /// backend if a previous plan already fired — recovery runs on the
    /// same stable bytes with writes re-enabled.
    pub fn set_crash_plan(&self, plan: Option<CrashPlan>) {
        *self.plan.lock() = plan;
        self.crashed.store(false, Ordering::Relaxed);
    }

    /// Whether an armed crash plan has fired.
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::Relaxed)
    }

    /// Durable writes sequenced so far — the crash-point namespace is
    /// `0..durable_writes()`.
    pub fn durable_writes(&self) -> u64 {
        self.sequencer.count()
    }

    /// The labelled enumeration of durable writes (crash-point table).
    pub fn journal(&self) -> Vec<FsyncRecord> {
        self.sequencer.journal()
    }

    /// Total bytes currently on stable storage (logs + segments +
    /// MANIFEST) — recovery-footprint accounting for the bench.
    pub fn stable_bytes(&self) -> u64 {
        let f = self.files.lock();
        let logs: usize = f.logs.iter().map(Vec::len).sum();
        let segs: usize = f.segments.values().map(Vec::len).sum();
        (logs + segs + f.manifest.as_ref().map(Vec::len).unwrap_or(0)) as u64
    }

    fn durable(&self, label: &'static str, arg: u64) -> DurableOutcome {
        if self.crashed.load(Ordering::Relaxed) {
            return DurableOutcome::CrashClean;
        }
        let ticket = self.sequencer.claim(label, arg);
        let plan = *self.plan.lock();
        match plan {
            Some(p) if ticket >= p.after => {
                self.crashed.store(true, Ordering::Relaxed);
                if p.torn && ticket == p.after {
                    DurableOutcome::CrashTorn
                } else {
                    DurableOutcome::CrashClean
                }
            }
            _ => DurableOutcome::Committed,
        }
    }

    fn crash_error(label: &'static str) -> StoreError {
        StoreError::Wal {
            detail: format!("simulated crash during {label}"),
        }
    }
}

impl WalBackend for MemWalBackend {
    fn append(&self, osd: usize, record: &[u8]) -> Result<(), StoreError> {
        let outcome = self.durable("wal.append", osd as u64);
        let mut f = self.files.lock();
        if f.logs.len() <= osd {
            f.logs.resize(osd + 1, Vec::new());
        }
        match outcome {
            DurableOutcome::Committed => {
                f.logs[osd].extend_from_slice(record);
                Ok(())
            }
            DurableOutcome::CrashTorn => {
                // Half the record reached the disk before the power cut.
                f.logs[osd].extend_from_slice(&record[..record.len() / 2]);
                Err(Self::crash_error("wal.append"))
            }
            DurableOutcome::CrashClean => Err(Self::crash_error("wal.append")),
        }
    }

    fn truncate_log(&self, osd: usize) -> Result<(), StoreError> {
        match self.durable("wal.truncate_log", osd as u64) {
            DurableOutcome::Committed => {
                let mut f = self.files.lock();
                if f.logs.len() > osd {
                    f.logs[osd].clear();
                }
                Ok(())
            }
            // Truncation is all-or-nothing: a crashed truncate leaves the
            // old log, which the next recovery filters by sequence number.
            _ => Err(Self::crash_error("wal.truncate_log")),
        }
    }

    fn write_segment(&self, name: &str, data: &[u8]) -> Result<(), StoreError> {
        let ordinal = {
            let f = self.files.lock();
            f.segments.len() as u64
        };
        match self.durable("wal.write_segment", ordinal) {
            DurableOutcome::Committed => {
                self.files
                    .lock()
                    .segments
                    .insert(name.into(), data.to_vec());
                Ok(())
            }
            DurableOutcome::CrashTorn => {
                // A torn segment is harmless until a MANIFEST names it; the
                // epoch-stamped name guarantees no old MANIFEST does.
                self.files
                    .lock()
                    .segments
                    .insert(name.into(), data[..data.len() / 2].to_vec());
                Err(Self::crash_error("wal.write_segment"))
            }
            DurableOutcome::CrashClean => Err(Self::crash_error("wal.write_segment")),
        }
    }

    fn replace_manifest(&self, data: &[u8]) -> Result<(), StoreError> {
        match self.durable("wal.replace_manifest", 0) {
            DurableOutcome::Committed => {
                self.files.lock().manifest = Some(data.to_vec());
                Ok(())
            }
            // Atomic replace: any crash keeps the previous MANIFEST.
            _ => Err(Self::crash_error("wal.replace_manifest")),
        }
    }

    fn read_log(&self, osd: usize) -> Vec<u8> {
        self.files.lock().logs.get(osd).cloned().unwrap_or_default()
    }

    fn read_segment(&self, name: &str) -> Option<Vec<u8>> {
        self.files.lock().segments.get(name).cloned()
    }

    fn read_manifest(&self) -> Option<Vec<u8>> {
        self.files.lock().manifest.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<TxOp> {
        vec![
            TxOp::WriteFull(Bytes::copy_from_slice(b"hello")),
            TxOp::Write {
                offset: 7,
                data: Bytes::copy_from_slice(b"xy"),
            },
            TxOp::Truncate(32),
            TxOp::SetXattr("dedup.refcount".into(), Bytes::copy_from_slice(&[1])),
            TxOp::RemoveXattr("gone".into()),
            TxOp::SetOmap("chunk.0".into(), Bytes::copy_from_slice(b"v")),
            TxOp::RemoveOmap("chunk.1".into()),
            TxOp::PunchHole { offset: 8, len: 8 },
            TxOp::Remove,
        ]
    }

    fn sample_record(seq: u64) -> WalRecord {
        WalRecord {
            seq,
            pool: PoolId(2),
            name: ObjectName::new("obj-a"),
            ops: sample_ops(),
        }
    }

    #[test]
    fn crc32_matches_known_vector() {
        // IEEE CRC-32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn record_round_trips_every_op() {
        let rec = sample_record(42);
        let framed = rec.encode();
        let (decoded, torn) = decode_records(&framed);
        assert!(!torn);
        assert_eq!(decoded, vec![rec]);
    }

    #[test]
    fn torn_tail_is_dropped_and_counted() {
        let a = sample_record(1).encode();
        let b = sample_record(2).encode();
        let mut log = a.clone();
        log.extend_from_slice(&b[..b.len() / 2]);
        let (decoded, torn) = decode_records(&log);
        assert!(torn);
        assert_eq!(decoded.len(), 1);
        assert_eq!(decoded[0].seq, 1);
    }

    #[test]
    fn bit_flip_fails_crc_and_stops_parsing() {
        let mut log = sample_record(1).encode();
        let n = log.len();
        log[n / 2] ^= 0x40;
        let (decoded, torn) = decode_records(&log);
        assert!(torn);
        assert!(decoded.is_empty());
    }

    #[test]
    fn manifest_round_trips_and_rejects_corruption() {
        let m = WalManifest {
            epoch: 3,
            last_seq: 99,
            segments: vec!["seg-a".into(), "seg-b".into()],
        };
        let buf = m.encode();
        assert_eq!(WalManifest::decode(&buf).unwrap(), m);

        let mut bad = buf.clone();
        bad[6] ^= 1;
        assert!(matches!(
            WalManifest::decode(&bad),
            Err(StoreError::Wal { .. })
        ));
        assert!(matches!(
            WalManifest::decode(&buf[..3]),
            Err(StoreError::Wal { .. })
        ));
    }

    #[test]
    fn mem_backend_appends_and_reads_back() {
        let be = MemWalBackend::new();
        let rec = sample_record(7).encode();
        be.append(3, &rec).unwrap();
        be.append(3, &rec).unwrap();
        assert_eq!(be.read_log(3).len(), rec.len() * 2);
        assert_eq!(be.read_log(0), Vec::<u8>::new());
        assert_eq!(be.durable_writes(), 2);
        let journal = be.journal();
        assert_eq!(journal[0].label, "wal.append");
        assert_eq!(journal[0].arg, 3);
    }

    #[test]
    fn crash_plan_fails_the_chosen_write_and_all_later_ones() {
        let be = MemWalBackend::new();
        let rec = sample_record(1).encode();
        be.set_crash_plan(Some(CrashPlan {
            after: 1,
            torn: false,
        }));
        be.append(0, &rec).unwrap();
        assert!(be.append(0, &rec).is_err());
        assert!(be.crashed());
        assert!(be.write_segment("s", b"x").is_err());
        assert!(be.replace_manifest(b"m").is_err());
        // Only the first append landed.
        let (decoded, torn) = decode_records(&be.read_log(0));
        assert!(!torn);
        assert_eq!(decoded.len(), 1);
        // Revive: writes flow again, stable bytes intact.
        be.set_crash_plan(None);
        be.append(0, &rec).unwrap();
        let (decoded, _) = decode_records(&be.read_log(0));
        assert_eq!(decoded.len(), 2);
    }

    #[test]
    fn torn_crash_leaves_a_half_record_recovery_drops() {
        let be = MemWalBackend::new();
        let rec = sample_record(1).encode();
        be.append(0, &rec).unwrap();
        be.set_crash_plan(Some(CrashPlan {
            after: 1,
            torn: true,
        }));
        assert!(be.append(0, &rec).is_err());
        let log = be.read_log(0);
        assert_eq!(log.len(), rec.len() + rec.len() / 2);
        let (decoded, torn) = decode_records(&log);
        assert!(torn);
        assert_eq!(decoded.len(), 1);
    }

    #[test]
    fn manifest_replace_is_atomic_under_crash() {
        let be = MemWalBackend::new();
        let old = WalManifest {
            epoch: 1,
            last_seq: 10,
            segments: vec![],
        };
        be.replace_manifest(&old.encode()).unwrap();
        be.set_crash_plan(Some(CrashPlan {
            after: 1,
            torn: true,
        }));
        let new = WalManifest {
            epoch: 2,
            last_seq: 20,
            segments: vec![],
        };
        assert!(be.replace_manifest(&new.encode()).is_err());
        let read = WalManifest::decode(&be.read_manifest().unwrap()).unwrap();
        assert_eq!(read, old);
    }
}
