//! Store-layer health checks: OSD availability and WAL durable-state
//! sanity, implementing [`dedup_obs::HealthCheck`] for aggregation into
//! a stack-wide [`dedup_obs::HealthReport`].

use dedup_obs::{HealthCheck, HealthFinding, HealthStatus};
use dedup_sim::SimTime;

use crate::cluster::Cluster;

/// OSD availability probe: any down OSD is `degraded` (the pools still
/// serve from survivors); half or more down is `critical` (replicated ×2
/// pools can no longer place full acting sets reliably).
pub struct OsdHealth<'a> {
    cluster: &'a Cluster,
}

impl<'a> OsdHealth<'a> {
    /// Probes `cluster`'s map.
    pub fn new(cluster: &'a Cluster) -> Self {
        OsdHealth { cluster }
    }
}

impl HealthCheck for OsdHealth<'_> {
    fn component(&self) -> &str {
        "cluster.osd"
    }

    fn check(&self, _now: SimTime) -> Vec<HealthFinding> {
        let osds = self.cluster.map().osds();
        let down: Vec<String> = osds
            .iter()
            .filter(|o| !o.up)
            .map(|o| o.id.0.to_string())
            .collect();
        if down.is_empty() {
            return Vec::new();
        }
        let status = if down.len() * 2 >= osds.len() {
            HealthStatus::Critical
        } else {
            HealthStatus::Degraded
        };
        vec![HealthFinding::new(
            "cluster.osd",
            status,
            "osd_down",
            format!(
                "{} of {} OSDs down (ids: {})",
                down.len(),
                osds.len(),
                down.join(",")
            ),
        )]
    }
}

/// WAL durable-state probe: the MANIFEST must decode and every segment it
/// names must be present and clean ([`Cluster::wal_manifest_check`]).
/// Corruption here means a crash right now would be unrecoverable, so any
/// failure is `critical`. A cluster without an attached WAL is healthy
/// (durability was never promised).
pub struct WalHealth<'a> {
    cluster: &'a Cluster,
}

impl<'a> WalHealth<'a> {
    /// Probes `cluster`'s WAL state.
    pub fn new(cluster: &'a Cluster) -> Self {
        WalHealth { cluster }
    }
}

impl HealthCheck for WalHealth<'_> {
    fn component(&self) -> &str {
        "cluster.wal"
    }

    fn check(&self, _now: SimTime) -> Vec<HealthFinding> {
        match self.cluster.wal_manifest_check() {
            None | Some(Ok(_)) => Vec::new(),
            Some(Err(detail)) => vec![HealthFinding::new(
                "cluster.wal",
                HealthStatus::Critical,
                "wal_manifest",
                detail,
            )],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterBuilder;
    use dedup_placement::OsdId;

    #[test]
    fn osd_health_tracks_down_devices() {
        let mut c = ClusterBuilder::new().nodes(4).osds_per_node(2).build();
        assert!(OsdHealth::new(&c).check(SimTime::ZERO).is_empty());

        c.mark_down(OsdId(0));
        let findings = OsdHealth::new(&c).check(SimTime::ZERO);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].status, HealthStatus::Degraded);
        assert_eq!(findings[0].code, "osd_down");
        assert!(findings[0].detail.contains("1 of 8"));

        for i in 1..4 {
            c.mark_down(OsdId(i));
        }
        let findings = OsdHealth::new(&c).check(SimTime::ZERO);
        assert_eq!(findings[0].status, HealthStatus::Critical);

        for i in 0..4 {
            c.revive_osd(OsdId(i));
        }
        assert!(OsdHealth::new(&c).check(SimTime::ZERO).is_empty());
    }

    #[test]
    fn wal_health_is_quiet_without_a_wal() {
        let c = ClusterBuilder::new().build();
        assert!(WalHealth::new(&c).check(SimTime::ZERO).is_empty());
    }
}
