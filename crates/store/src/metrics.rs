//! Cluster-level observability: cached instrument handles for the data
//! plane's hot paths.
//!
//! The handles live on [`Cluster`](crate::Cluster) so recording is a couple
//! of atomic ops per I/O — the registry itself is only locked when an
//! instrument is first created or a snapshot is taken. All instruments are
//! interior-mutable, so `&self` paths (scrub) can record too.

use dedup_obs::{Counter, Histogram, Registry};

/// Instrument handles for one cluster.
#[derive(Debug, Clone)]
pub(crate) struct ClusterMetrics {
    registry: Registry,
    /// Write transactions (any transaction carrying payload data).
    pub writes: Counter,
    /// Payload bytes accepted by write transactions.
    pub write_bytes: Counter,
    /// Read operations served.
    pub reads: Counter,
    /// Bytes returned to readers.
    pub read_bytes: Counter,
    /// Delete transactions.
    pub deletes: Counter,
    /// Latency of executed cost expressions, in virtual nanoseconds.
    pub exec_latency: Histogram,
    /// Recovery / rebalance passes run.
    pub recovery_runs: Counter,
    /// Objects examined across recovery passes.
    pub recovery_examined: Counter,
    /// Objects repaired (replicas copied or shards rebuilt).
    pub recovery_repaired: Counter,
    /// Payload bytes moved during recovery.
    pub recovery_bytes_moved: Counter,
    /// Scrub passes run (shallow and deep).
    pub scrub_runs: Counter,
    /// Inconsistencies found by scrubs.
    pub scrub_findings: Counter,
    /// Payload bytes deep-copied (memcpy) at data-plane hops. Registered
    /// as `engine.bytes_copied` so a stacked dedup engine sharing this
    /// registry accumulates into the same counter.
    pub bytes_copied: Counter,
    /// Payload bytes moved by refcount bump where the pre-zero-copy
    /// design memcpy'd (shared `engine.bytes_shared` instrument).
    pub bytes_shared: Counter,
    /// WAL records appended (one per committed transaction).
    pub wal_appends: Counter,
    /// Framed bytes appended to the per-OSD logs.
    pub wal_append_bytes: Counter,
    /// Checkpoints completed (segments + MANIFEST + log truncation).
    pub wal_checkpoints: Counter,
    /// Records replayed from checkpoint segments and log tails.
    pub wal_records_replayed: Counter,
    /// Torn log tails dropped by CRC during recovery.
    pub wal_torn_dropped: Counter,
    /// Wall-clock nanoseconds of WAL recovery passes.
    pub wal_recovery_wall_ns: Histogram,
}

impl ClusterMetrics {
    pub(crate) fn new(registry: Registry) -> Self {
        ClusterMetrics {
            writes: registry.counter("cluster.writes"),
            write_bytes: registry.counter("cluster.write_bytes"),
            reads: registry.counter("cluster.reads"),
            read_bytes: registry.counter("cluster.read_bytes"),
            deletes: registry.counter("cluster.deletes"),
            exec_latency: registry.histogram("cluster.exec_latency_ns"),
            recovery_runs: registry.counter("cluster.recovery.runs"),
            recovery_examined: registry.counter("cluster.recovery.objects_examined"),
            recovery_repaired: registry.counter("cluster.recovery.objects_repaired"),
            recovery_bytes_moved: registry.counter("cluster.recovery.bytes_moved"),
            scrub_runs: registry.counter("cluster.scrub.runs"),
            scrub_findings: registry.counter("cluster.scrub.findings"),
            bytes_copied: registry.counter("engine.bytes_copied"),
            bytes_shared: registry.counter("engine.bytes_shared"),
            wal_appends: registry.counter("wal.appends"),
            wal_append_bytes: registry.counter("wal.append_bytes"),
            wal_checkpoints: registry.counter("wal.checkpoints"),
            wal_records_replayed: registry.counter("wal.records_replayed"),
            wal_torn_dropped: registry.counter("wal.torn_records_dropped"),
            wal_recovery_wall_ns: registry.histogram("wal.recovery_wall_ns"),
            registry,
        }
    }

    pub(crate) fn registry(&self) -> &Registry {
        &self.registry
    }
}
