//! Store error type.

use std::error::Error;
use std::fmt;

use dedup_erasure::ErasureError;
use dedup_placement::{OsdId, PoolId};

use crate::object::ObjectName;

/// Errors returned by cluster operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The pool does not exist.
    NoSuchPool(PoolId),
    /// The object does not exist in the pool.
    NoSuchObject(PoolId, ObjectName),
    /// The OSD id is not registered in the cluster map.
    NoSuchOsd(OsdId),
    /// Too few devices are up to satisfy the pool's redundancy.
    InsufficientOsds {
        /// Devices the pool's rule needs.
        needed: usize,
        /// Devices currently available.
        available: usize,
    },
    /// A read past the end of an object.
    ReadOutOfRange {
        /// Requested offset.
        offset: u64,
        /// Requested length.
        len: u64,
        /// Actual object size.
        object_size: u64,
    },
    /// An object grew past the per-object size cap (guards runaway offsets).
    ObjectTooLarge {
        /// Size the operation would have produced.
        requested: u64,
        /// Configured cap.
        cap: u64,
    },
    /// An erasure-coded object could not be read or rebuilt.
    Erasure(ErasureError),
    /// The durability plane failed a write — for the in-memory backend
    /// this is the simulated crash point — or found corrupt WAL state.
    Wal {
        /// Human-readable description of the failure.
        detail: String,
    },
    /// A replica or shard was missing or inconsistent during read/scrub.
    Inconsistent {
        /// Pool of the damaged object.
        pool: PoolId,
        /// Name of the damaged object.
        name: ObjectName,
        /// Human-readable description of the damage.
        detail: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NoSuchPool(p) => write!(f, "no such pool: {p}"),
            StoreError::NoSuchObject(p, n) => write!(f, "no such object: {p}/{n}"),
            StoreError::NoSuchOsd(o) => write!(f, "no such osd: {o}"),
            StoreError::InsufficientOsds { needed, available } => {
                write!(f, "need {needed} osds, only {available} available")
            }
            StoreError::ReadOutOfRange {
                offset,
                len,
                object_size,
            } => write!(
                f,
                "read [{offset}, {offset}+{len}) past object size {object_size}"
            ),
            StoreError::ObjectTooLarge { requested, cap } => {
                write!(f, "object would grow to {requested} bytes (cap {cap})")
            }
            StoreError::Erasure(e) => write!(f, "erasure coding: {e}"),
            StoreError::Wal { detail } => write!(f, "wal: {detail}"),
            StoreError::Inconsistent { pool, name, detail } => {
                write!(f, "inconsistent object {pool}/{name}: {detail}")
            }
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StoreError::Erasure(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ErasureError> for StoreError {
    fn from(e: ErasureError) -> Self {
        StoreError::Erasure(e)
    }
}
