//! Recovery, backfill/rebalance, and scrub.
//!
//! Because dedup metadata lives *inside* objects (self-contained objects),
//! this module needs zero knowledge of deduplication: re-replicating an
//! object automatically re-replicates its chunk map or reference counts.
//! That is precisely the paper's argument for the design (§3.2, §6.4.2).

use dedup_placement::{OsdId, PoolId};
use dedup_sim::CostExpr;

use crate::cluster::{Cluster, Timed};
use crate::error::StoreError;
use crate::object::{ObjectName, Payload};
use crate::pool::Redundancy;

/// Outcome of a recovery / rebalance pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Objects examined across all pools.
    pub objects_examined: u64,
    /// Objects that needed at least one replica/shard copied or rebuilt.
    pub objects_repaired: u64,
    /// Payload bytes moved over the network during repair.
    pub bytes_moved: u64,
    /// Stray replicas removed from devices outside the acting set.
    pub strays_removed: u64,
    /// Objects that could not be recovered (too many shards lost).
    pub lost: Vec<(PoolId, ObjectName)>,
}

/// A replica inconsistency found by scrub.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrubFinding {
    /// Pool of the damaged object.
    pub pool: PoolId,
    /// Damaged object.
    pub name: ObjectName,
    /// What is wrong.
    pub detail: String,
}

impl Cluster {
    /// Repairs every object: re-replicates missing copies, rebuilds missing
    /// erasure shards, and removes strays left behind by map changes. Call
    /// after [`Cluster::fail_osd`] / [`Cluster::add_osd`] /
    /// [`Cluster::revive_osd`]; this is both recovery and rebalance.
    ///
    /// The returned cost models reads from surviving devices, network
    /// transfers, and writes to targets, so executing it yields the
    /// recovery time of the paper's Table 3.
    ///
    /// # Errors
    ///
    /// Fails only on internal inconsistencies (e.g. a pool disappearing mid
    /// scan); unrecoverable objects are reported in
    /// [`RecoveryReport::lost`], not as an error.
    pub fn recover(&mut self) -> Result<Timed<RecoveryReport>, StoreError> {
        let pools: Vec<PoolId> = self.pools.keys().copied().collect();
        let mut report = RecoveryReport::default();
        let mut costs: Vec<CostExpr> = Vec::new();
        for pool in pools {
            for name in self.list_objects(pool)? {
                report.objects_examined += 1;
                self.recover_object(pool, &name, &mut report, &mut costs)?;
            }
        }
        self.metrics.recovery_runs.inc();
        self.metrics.recovery_examined.add(report.objects_examined);
        self.metrics.recovery_repaired.add(report.objects_repaired);
        self.metrics.recovery_bytes_moved.add(report.bytes_moved);
        if let Some(ev) = self.events() {
            if report.objects_repaired > 0 || report.strays_removed > 0 {
                ev.emit(
                    dedup_obs::Severity::Info,
                    "cluster.recovery",
                    "repairs",
                    vec![
                        ("objects_examined", report.objects_examined.to_string()),
                        ("objects_repaired", report.objects_repaired.to_string()),
                        ("bytes_moved", report.bytes_moved.to_string()),
                        ("strays_removed", report.strays_removed.to_string()),
                    ],
                );
            }
            for (pool, name) in &report.lost {
                ev.emit(
                    dedup_obs::Severity::Error,
                    "cluster.recovery",
                    "object_lost",
                    vec![
                        ("pool", pool.0.to_string()),
                        ("object", name.as_str().to_string()),
                    ],
                );
            }
        }
        // Recovery proceeds in parallel across placement groups (bounded
        // in real clusters by op queues, but bandwidth-bound either way):
        // disks and NICs serialize transfers through the resource model,
        // while per-object latencies overlap.
        Ok(Timed::new(
            report,
            self.label("recovery", CostExpr::par(costs)),
        ))
    }

    fn recover_object(
        &mut self,
        pool: PoolId,
        name: &ObjectName,
        report: &mut RecoveryReport,
        costs: &mut Vec<CostExpr>,
    ) -> Result<(), StoreError> {
        let acting = match self.acting(pool, name) {
            Ok(a) => a,
            Err(StoreError::InsufficientOsds { .. }) => {
                report.lost.push((pool, name.clone()));
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        let holders = self.holders(pool, name);
        let redundancy = self.state(pool)?.config.redundancy;

        // Is any acting device missing or holding the wrong shard?
        let misplaced: Vec<OsdId> = acting
            .iter()
            .copied()
            .enumerate()
            .filter(|&(rank, osd)| match self.osd_store(osd).get(pool, name) {
                None => true,
                Some(obj) => match (&obj.payload, redundancy) {
                    (Payload::Shard { index, .. }, Redundancy::Erasure { .. }) => {
                        *index as usize != rank
                    }
                    _ => false,
                },
            })
            .map(|(_, osd)| osd)
            .collect();
        let strays: Vec<OsdId> = holders
            .iter()
            .copied()
            .filter(|h| !acting.contains(h))
            .collect();

        // Load the logical object while strays may still be the only
        // holders of live data (a rebalance can move an object entirely).
        let logical = if misplaced.is_empty() {
            None
        } else {
            match self.load_logical(pool, name)? {
                Some(l) => Some(l),
                None => {
                    // Not enough shards anywhere: leave remaining pieces in
                    // place for forensics and report the loss.
                    report.lost.push((pool, name.clone()));
                    return Ok(());
                }
            }
        };

        if let Some(logical) = logical {
            // Cost: read enough source replicas, send to each target, write.
            // Source selection spreads by name hash so one surviving OSD
            // does not serve every move.
            if holders.is_empty() {
                return Err(StoreError::NoSuchObject(pool, name.clone()));
            }
            let src = holders
                [(dedup_placement::hash::xxh64(name.as_bytes(), 0x5eed) as usize) % holders.len()];
            let src_node = self.map.osd(src).node.0 as usize;
            // Only resident bytes move: punched holes (evicted cache) cost
            // nothing, which is exactly why deduplicated clusters recover
            // faster (paper Table 3). Metadata (chunk maps, refcounts)
            // moves with the object.
            let resident = (logical.data.len() as u64)
                .saturating_sub(logical.holes.total())
                .max(1);
            let meta_bytes: u64 = logical
                .xattrs
                .iter()
                .map(|(k, v)| (k.len() + v.len()) as u64)
                .sum::<u64>()
                + logical
                    .omap
                    .iter()
                    .map(|(k, v)| (k.len() + v.len()) as u64)
                    .sum::<u64>();
            let bytes = match redundancy {
                Redundancy::Replicated(_) => resident + meta_bytes,
                Redundancy::Erasure { k, .. } => resident.div_ceil(k as u64) + meta_bytes,
            }
            .max(1);
            let read_cost = match redundancy {
                Redundancy::Replicated(_) => self.perf.disk_io(src.0 as usize, bytes),
                Redundancy::Erasure { k, .. } => CostExpr::par(
                    holders
                        .iter()
                        .take(k)
                        .map(|&h| self.perf.disk_io(h.0 as usize, bytes)),
                ),
            };
            let write_cost = CostExpr::par(misplaced.iter().map(|&t| {
                let t_node = self.map.osd(t).node.0 as usize;
                CostExpr::seq([
                    self.perf.node_to_node(src_node, t_node, bytes),
                    self.perf.disk_io(t.0 as usize, bytes),
                ])
            }));
            costs.push(CostExpr::seq([
                self.label("repair_read", read_cost),
                self.label("repair_write", write_cost),
            ]));
            report.objects_repaired += 1;
            report.bytes_moved += bytes * misplaced.len() as u64;

            // Re-store across the acting set (idempotent for devices
            // already holding the right content); the cost was charged
            // explicitly above.
            let ctx = crate::cluster::IoCtx::new(pool);
            self.restore_logical(&ctx, name, logical)?;
        }

        for s in strays {
            // The restore above may already have dropped the stray; count
            // it as removed either way — it held a replica when this pass
            // began and no longer does.
            let freed = self.osds[s.0 as usize]
                .write()
                .remove(pool, name)
                .map(|obj| obj.stored_bytes)
                .unwrap_or(0);
            report.strays_removed += 1;
            costs.push(self.perf.disk_io(s.0 as usize, 64.max(freed / 64)));
        }
        Ok(())
    }

    fn restore_logical(
        &mut self,
        ctx: &crate::cluster::IoCtx,
        name: &ObjectName,
        logical: crate::cluster::LogicalObject,
    ) -> Result<(), StoreError> {
        use crate::cluster::TxOp;
        let mut ops = vec![TxOp::WriteFull(logical.data)];
        for (start, end) in logical.holes.iter() {
            ops.push(TxOp::PunchHole {
                offset: start,
                len: end - start,
            });
        }
        for (k, v) in logical.xattrs {
            ops.push(TxOp::SetXattr(k, v));
        }
        for (k, v) in logical.omap {
            ops.push(TxOp::SetOmap(k, v));
        }
        // The transaction path re-places the object on the current acting
        // set; its cost is discarded because recovery charged explicitly.
        let _ = self.transact(ctx, name, ops)?;
        Ok(())
    }

    /// Verifies replica consistency for one pool. A clean scrub returns an
    /// empty list.
    ///
    /// # Errors
    ///
    /// Fails for unknown pools.
    pub fn scrub(&self, pool: PoolId) -> Result<Vec<ScrubFinding>, StoreError> {
        let st = self.state(pool)?;
        let redundancy = st.config.redundancy;
        let mut findings = Vec::new();
        for name in self.list_objects(pool)? {
            let acting = match self.acting(pool, &name) {
                Ok(a) => a,
                Err(_) => {
                    findings.push(ScrubFinding {
                        pool,
                        name: name.clone(),
                        detail: "no acting set available".into(),
                    });
                    continue;
                }
            };
            match redundancy {
                Redundancy::Replicated(_) => {
                    // Owned snapshot of the first replica: per-OSD locks are
                    // taken one at a time, so a borrowed reference cannot
                    // outlive its device guard.
                    let mut reference: Option<crate::object::StoredObject> = None;
                    for &osd in &acting {
                        match self.osd_store(osd).get(pool, &name) {
                            None => findings.push(ScrubFinding {
                                pool,
                                name: name.clone(),
                                detail: format!("missing replica on {osd}"),
                            }),
                            Some(obj) => match &reference {
                                None => reference = Some(obj.clone()),
                                Some(r) if r != obj => findings.push(ScrubFinding {
                                    pool,
                                    name: name.clone(),
                                    detail: format!("replica mismatch on {osd}"),
                                }),
                                Some(_) => {}
                            },
                        }
                    }
                }
                Redundancy::Erasure { .. } => {
                    for (rank, &osd) in acting.iter().enumerate() {
                        match self.osd_store(osd).get(pool, &name) {
                            None => findings.push(ScrubFinding {
                                pool,
                                name: name.clone(),
                                detail: format!("missing shard {rank} on {osd}"),
                            }),
                            Some(obj) => {
                                if let Payload::Shard { index, .. } = &obj.payload {
                                    if *index as usize != rank {
                                        findings.push(ScrubFinding {
                                            pool,
                                            name: name.clone(),
                                            detail: format!(
                                                "shard index {index} at rank {rank} on {osd}"
                                            ),
                                        });
                                    }
                                } else {
                                    findings.push(ScrubFinding {
                                        pool,
                                        name: name.clone(),
                                        detail: format!("full payload in EC pool on {osd}"),
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        self.metrics.scrub_runs.inc();
        self.metrics.scrub_findings.add(findings.len() as u64);
        Ok(findings)
    }
}

impl Cluster {
    /// Deep scrub: beyond presence/shape checks, verifies *content* —
    /// replicated objects must be byte-identical on every acting device,
    /// and erasure-coded objects must have parity consistent with their
    /// data shards (re-encode and compare). Detects silent corruption that
    /// the light [`Cluster::scrub`] cannot.
    ///
    /// # Errors
    ///
    /// Fails for unknown pools.
    pub fn deep_scrub(&self, pool: PoolId) -> Result<Vec<ScrubFinding>, StoreError> {
        let mut findings = self.scrub(pool)?;
        // The shallow pass above already counted itself; record only the
        // extra content-level findings below.
        let shallow_findings = findings.len();
        let st = self.state(pool)?;
        let redundancy = st.config.redundancy;
        if let Redundancy::Erasure { k, m } = redundancy {
            let codec = dedup_erasure::ReedSolomon::new(k, m).expect("pool validated at creation");
            for name in self.list_objects(pool)? {
                let Ok(acting) = self.acting(pool, &name) else {
                    continue;
                };
                // Shard views are refcount bumps out of each OSD's guard.
                let mut shards: Vec<Option<bytes::Bytes>> = vec![None; k + m];
                for &osd in &acting {
                    if let Some(obj) = self.osd_store(osd).get(pool, &name) {
                        if let Payload::Shard { index, bytes, .. } = &obj.payload {
                            if (*index as usize) < shards.len() {
                                shards[*index as usize] = Some(bytes.clone());
                            }
                        }
                    }
                }
                let data: Option<Vec<&[u8]>> = shards[..k].iter().map(|s| s.as_deref()).collect();
                let Some(data) = data else { continue };
                let Ok(parity) = codec.encode(&data) else {
                    continue;
                };
                for (i, expect) in parity.iter().enumerate() {
                    if let Some(stored) = &shards[k + i] {
                        if stored != expect {
                            findings.push(ScrubFinding {
                                pool,
                                name: name.clone(),
                                detail: format!(
                                    "parity shard {} inconsistent with data shards",
                                    k + i
                                ),
                            });
                        }
                    }
                }
            }
        }
        self.metrics
            .scrub_findings
            .add((findings.len() - shallow_findings) as u64);
        Ok(findings)
    }
}

impl Cluster {
    /// Repairs a single damaged object: replicated pools restore every
    /// replica from the majority content (or the primary when no strict
    /// majority exists, e.g. size 2); erasure-coded pools rebuild parity
    /// from the data shards. Use after [`Cluster::deep_scrub`] flags it.
    ///
    /// # Errors
    ///
    /// Fails if the object does not exist or the pool is unknown.
    pub fn repair_object(
        &mut self,
        pool: PoolId,
        name: &ObjectName,
    ) -> Result<Timed<bool>, StoreError> {
        let acting = self.acting(pool, name)?;
        let redundancy = self.state(pool)?.config.redundancy;
        let mut repaired = false;
        let mut costs: Vec<CostExpr> = Vec::new();
        match redundancy {
            Redundancy::Replicated(_) => {
                // Majority vote over replica payloads; primary wins ties.
                let mut votes: Vec<(usize, &OsdId)> = Vec::new();
                for (i, osd) in acting.iter().enumerate() {
                    if self.osd_store(*osd).get(pool, name).is_some() {
                        votes.push((i, osd));
                    }
                }
                if votes.is_empty() {
                    return Err(StoreError::NoSuchObject(pool, name.clone()));
                }
                // Count identical replicas. The candidate is cloned out of
                // its guard so at most one OSD lock is held at a time.
                let mut best = votes[0].1;
                let mut best_count = 0usize;
                for &(_, cand) in &votes {
                    let cand_obj: Option<crate::object::StoredObject> =
                        self.osd_store(*cand).get(pool, name).cloned();
                    let count = votes
                        .iter()
                        .filter(|&&(_, o)| self.osd_store(*o).get(pool, name) == cand_obj.as_ref())
                        .count();
                    if count > best_count {
                        best_count = count;
                        best = cand;
                    }
                }
                let source = *best;
                let reference = self
                    .osd_store(source)
                    .get(pool, name)
                    .expect("vote source exists")
                    .clone();
                let bytes = reference.stored_bytes.max(64);
                for &osd in &acting {
                    let differs = self.osd_store(osd).get(pool, name) != Some(&reference);
                    if differs {
                        let src_node = self.map.osd(source).node.0 as usize;
                        let dst_node = self.map.osd(osd).node.0 as usize;
                        costs.push(CostExpr::seq([
                            self.perf.disk_io(source.0 as usize, bytes),
                            self.perf.node_to_node(src_node, dst_node, bytes),
                            self.perf.disk_io(osd.0 as usize, bytes),
                        ]));
                        self.osd_store_mut(osd)
                            .put(pool, name.clone(), reference.clone());
                        repaired = true;
                    }
                }
            }
            Redundancy::Erasure { .. } => {
                // Rebuild everything (incl. parity) from the decodable data.
                let logical = self
                    .load_logical(pool, name)?
                    .ok_or_else(|| StoreError::NoSuchObject(pool, name.clone()))?;
                let bytes = logical.data.len() as u64;
                costs.push(CostExpr::par(acting.iter().map(|&osd| {
                    self.perf
                        .disk_io(osd.0 as usize, bytes.max(64) / acting.len() as u64)
                })));
                let ctx = crate::cluster::IoCtx::new(pool);
                self.restore_logical(&ctx, name, logical)?;
                repaired = true;
            }
        }
        Ok(Timed::new(repaired, CostExpr::seq(costs)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterBuilder, IoCtx};
    use crate::pool::PoolConfig;
    use dedup_sim::SimTime;

    /// Mutates one replica behind the cluster's back (simulated silent
    /// corruption), dropping the device's write guard before returning so
    /// a follow-up scrub in the same thread cannot self-deadlock.
    fn corrupt(
        c: &crate::cluster::Cluster,
        osd: OsdId,
        pool: PoolId,
        name: &ObjectName,
        f: impl FnOnce(&mut crate::object::StoredObject),
    ) {
        let mut store = c.osd_store_mut(osd);
        f(store.get_mut(pool, name).expect("replica"));
    }

    fn loaded_cluster(redundancy: PoolConfig) -> (crate::cluster::Cluster, IoCtx, Vec<Vec<u8>>) {
        let mut c = ClusterBuilder::new().nodes(4).osds_per_node(4).build();
        let pool = c.create_pool(redundancy);
        let ctx = IoCtx::new(pool);
        let mut datasets = Vec::new();
        for i in 0..60 {
            let data: Vec<u8> = (0..2048).map(|j| ((i * 7 + j) % 256) as u8).collect();
            let _ = c
                .write_full(&ctx, &ObjectName::new(format!("obj-{i}")), data.clone())
                .expect("write");
            datasets.push(data);
        }
        (c, ctx, datasets)
    }

    #[test]
    fn replicated_recovery_restores_redundancy() {
        let (mut c, ctx, datasets) = loaded_cluster(PoolConfig::replicated("r", 2));
        c.fail_osd(OsdId(3));
        let t = c.recover().expect("recover");
        assert!(t.value.objects_repaired > 0, "some objects lived on osd.3");
        assert!(t.value.bytes_moved > 0);
        assert!(t.value.lost.is_empty());
        // Every object is back to 2 replicas and readable.
        for (i, data) in datasets.iter().enumerate() {
            let name = ObjectName::new(format!("obj-{i}"));
            assert_eq!(c.holders(ctx.pool, &name).len(), 2, "obj-{i}");
            let r = c.read_full(&ctx, &name).expect("read");
            assert_eq!(&r.value, data, "obj-{i}");
        }
        assert!(c.scrub(ctx.pool).expect("scrub").is_empty());
    }

    #[test]
    fn ec_recovery_rebuilds_shards() {
        let (mut c, ctx, datasets) = loaded_cluster(PoolConfig::erasure("e", 2, 1));
        c.fail_osd(OsdId(7));
        let t = c.recover().expect("recover");
        assert!(t.value.lost.is_empty());
        for (i, data) in datasets.iter().enumerate() {
            let name = ObjectName::new(format!("obj-{i}"));
            assert_eq!(c.holders(ctx.pool, &name).len(), 3, "obj-{i}");
            let r = c.read_full(&ctx, &name).expect("read");
            assert_eq!(&r.value, data, "obj-{i}");
        }
        assert!(c.scrub(ctx.pool).expect("scrub").is_empty());
    }

    #[test]
    fn recovery_cost_scales_with_failures() {
        let (mut c1, _, _) = loaded_cluster(PoolConfig::replicated("r", 2));
        let (mut c2, _, _) = loaded_cluster(PoolConfig::replicated("r", 2));
        c1.fail_osd(OsdId(0));
        c2.fail_osd(OsdId(0));
        c2.fail_osd(OsdId(5));
        let t1 = c1.recover().expect("recover");
        let t2 = c2.recover().expect("recover");
        assert!(
            t2.value.bytes_moved > t1.value.bytes_moved,
            "two failures move more data"
        );
        let d1 = c1.execute_at(SimTime::ZERO, &t1.cost);
        let d2 = c2.execute_at(SimTime::ZERO, &t2.cost);
        assert!(d2 >= d1, "recovery of more data takes at least as long");
    }

    #[test]
    fn adding_osd_rebalances_with_bounded_movement() {
        let (mut c, ctx, _) = loaded_cluster(PoolConfig::replicated("r", 2));
        let before: u64 = c.usage(ctx.pool).expect("usage").stored_bytes;
        let node0 = c.map().osd(OsdId(0)).node;
        c.add_osd(node0, 1.0);
        let t = c.recover().expect("rebalance");
        // Some objects moved to the new device, strays were removed.
        assert!(t.value.objects_repaired > 0, "no rebalance happened");
        assert!(t.value.strays_removed > 0, "stray replicas not cleaned");
        // Redundancy unchanged.
        let after = c.usage(ctx.pool).expect("usage").stored_bytes;
        assert_eq!(before, after);
        assert!(c.scrub(ctx.pool).expect("scrub").is_empty());
        // New device actually holds data.
        assert!(c.osd_store(OsdId(16)).stats().objects > 0);
    }

    #[test]
    fn revive_and_backfill_returns_data() {
        let (mut c, ctx, _) = loaded_cluster(PoolConfig::replicated("r", 2));
        let victim = OsdId(2);
        let before_stats = c.osd_store(victim).stats();
        assert!(before_stats.objects > 0);
        c.fail_osd(victim);
        let _ = c.recover().expect("recover");
        c.revive_osd(victim);
        let t = c.recover().expect("backfill");
        assert!(t.value.objects_repaired > 0 || t.value.strays_removed > 0);
        assert!(c.scrub(ctx.pool).expect("scrub").is_empty());
        // Placement is identical to before the failure, so the revived
        // device gets its objects back.
        assert_eq!(c.osd_store(victim).stats().objects, before_stats.objects);
    }

    #[test]
    fn data_loss_is_reported_not_panicked() {
        let mut c = ClusterBuilder::new().nodes(3).osds_per_node(1).build();
        let pool = c.create_pool(PoolConfig::erasure("e", 2, 1));
        let ctx = IoCtx::new(pool);
        let _ = c
            .write_full(&ctx, &ObjectName::new("x"), vec![1u8; 4096])
            .expect("write");
        // Lose two of three shards: 2+1 cannot rebuild.
        c.fail_osd(OsdId(0));
        c.fail_osd(OsdId(1));
        let t = c.recover().expect("recover runs");
        assert_eq!(t.value.lost.len(), 1);
    }

    #[test]
    fn scrub_detects_injected_replica_mismatch() {
        let (c, ctx, _) = loaded_cluster(PoolConfig::replicated("r", 2));
        let name = ObjectName::new("obj-0");
        let victim = c.holders(ctx.pool, &name)[0];
        // Corrupt one replica's payload behind the cluster's back.
        corrupt(&c, victim, ctx.pool, &name, |obj| {
            if let crate::object::Payload::Full(ref mut b) = obj.payload {
                b.make_mut()[0] ^= 0xFF;
            }
        });
        let findings = c.scrub(ctx.pool).expect("scrub");
        assert!(findings.iter().any(|f| f.name == name));
    }

    #[test]
    fn deep_scrub_detects_parity_corruption() {
        let (c, ctx, _) = loaded_cluster(PoolConfig::erasure("e", 2, 1));
        // Light scrub is clean; corrupt one PARITY shard silently.
        assert!(c.deep_scrub(ctx.pool).expect("scrub").is_empty());
        let name = ObjectName::new("obj-4");
        let acting = c.acting(ctx.pool, &name).expect("acting");
        let parity_osd = acting[2];
        corrupt(&c, parity_osd, ctx.pool, &name, |obj| {
            if let crate::object::Payload::Shard { ref mut bytes, .. } = obj.payload {
                bytes.make_mut()[7] ^= 0xFF;
            }
        });
        // The light scrub still passes (shape is fine)...
        assert!(c.scrub(ctx.pool).expect("scrub").is_empty());
        // ...but deep scrub re-encodes and catches it.
        let findings = c.deep_scrub(ctx.pool).expect("deep scrub");
        assert!(
            findings
                .iter()
                .any(|f| f.name == name && f.detail.contains("parity")),
            "parity corruption missed: {findings:?}"
        );
    }

    #[test]
    fn deep_scrub_detects_replica_divergence() {
        let (c, ctx, _) = loaded_cluster(PoolConfig::replicated("r", 2));
        let name = ObjectName::new("obj-1");
        let victim = c.holders(ctx.pool, &name)[1];
        corrupt(&c, victim, ctx.pool, &name, |obj| {
            if let crate::object::Payload::Full(ref mut b) = obj.payload {
                b.make_mut()[100] ^= 1;
            }
        });
        let findings = c.deep_scrub(ctx.pool).expect("deep scrub");
        assert!(findings.iter().any(|f| f.name == name));
    }

    #[test]
    fn repair_restores_corrupted_replica() {
        let (mut c, ctx, datasets) = loaded_cluster(PoolConfig::replicated("r", 2));
        let name = ObjectName::new("obj-3");
        let victim = c.holders(ctx.pool, &name)[1];
        corrupt(&c, victim, ctx.pool, &name, |obj| {
            if let crate::object::Payload::Full(ref mut b) = obj.payload {
                b.make_mut()[5] ^= 0x42;
            }
        });
        assert!(!c.deep_scrub(ctx.pool).expect("scrub").is_empty());
        let t = c.repair_object(ctx.pool, &name).expect("repair");
        assert!(t.value, "repair reported work");
        assert!(!t.cost.is_nop());
        assert!(c.deep_scrub(ctx.pool).expect("scrub").is_empty());
        let r = c.read_full(&ctx, &name).expect("read");
        assert_eq!(r.value, datasets[3], "primary content won the vote");
    }

    #[test]
    fn repair_rebuilds_ec_parity() {
        let (mut c, ctx, datasets) = loaded_cluster(PoolConfig::erasure("e", 2, 1));
        let name = ObjectName::new("obj-7");
        let acting = c.acting(ctx.pool, &name).expect("acting");
        corrupt(&c, acting[2], ctx.pool, &name, |obj| {
            if let crate::object::Payload::Shard { ref mut bytes, .. } = obj.payload {
                bytes.make_mut()[0] ^= 0xFF;
            }
        });
        assert!(!c.deep_scrub(ctx.pool).expect("scrub").is_empty());
        let t = c.repair_object(ctx.pool, &name).expect("repair");
        assert!(t.value);
        assert!(c.deep_scrub(ctx.pool).expect("scrub").is_empty());
        let r = c.read_full(&ctx, &name).expect("read");
        assert_eq!(r.value, datasets[7]);
    }

    #[test]
    fn repair_on_healthy_object_is_a_noop() {
        let (mut c, ctx, _) = loaded_cluster(PoolConfig::replicated("r", 2));
        let t = c
            .repair_object(ctx.pool, &ObjectName::new("obj-0"))
            .expect("repair");
        assert!(!t.value, "nothing to do");
    }

    #[test]
    fn recovery_preserves_object_metadata() {
        use crate::cluster::TxOp;
        let (mut c, ctx, _) = loaded_cluster(PoolConfig::replicated("r", 2));
        let name = ObjectName::new("meta-obj");
        let _ = c
            .transact(
                &ctx,
                &name,
                vec![
                    TxOp::WriteFull(vec![9u8; 512].into()),
                    TxOp::SetXattr("refcount".into(), vec![42].into()),
                    TxOp::SetOmap("chunk.0".into(), b"entry".to_vec().into()),
                ],
            )
            .expect("tx");
        let holder = c.holders(ctx.pool, &name)[0];
        c.fail_osd(holder);
        let _ = c.recover().expect("recover");
        let x = c.get_xattr(&ctx, &name, "refcount").expect("xattr");
        assert_eq!(x.value.as_deref(), Some(&[42u8][..]));
        let o = c.get_omap(&ctx, &name, "chunk.0").expect("omap");
        assert_eq!(o.value.as_deref(), Some(b"entry".as_slice()));
    }
}
