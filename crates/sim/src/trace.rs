//! Trace hooks for the timing plane.
//!
//! The simulator stays free of tracing plumbing the same way it stays free
//! of metrics plumbing: instead of `dedup-sim` depending on an
//! observability crate, the [`FlowEngine`](crate::FlowEngine) accepts an
//! optional [`TraceSink`] and reports every executed leg to it — resource,
//! queue-entry time, service start and completion, so queueing and service
//! time are separable downstream. When no sink is attached the engine
//! skips all reporting (one `Option` test per leg), so the disabled path
//! costs nothing and virtual-time results are bit-identical either way.
//!
//! Legs can carry a label (set with [`CostExpr::tagged`](crate::CostExpr))
//! naming the semantic step they implement — e.g. a proxied redirection
//! read tags its base-pool lookup hop and its chunk-pool read separately.
//! Labels nest: a leaf inside `Tagged("a", Tagged("b", ..))` reports the
//! path `"a/b"`.

use std::sync::Arc;

use crate::resource::ResourceId;
use crate::time::SimTime;

/// What kind of work a traced leg performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LegKind {
    /// Bytes moved through a resource's serial section.
    Transfer,
    /// A resource occupied for a fixed duration.
    Busy,
    /// A pure delay, not tied to any resource.
    Delay,
}

/// One executed leg of a flow, reported to a [`TraceSink`].
#[derive(Debug, Clone)]
pub struct LegRecord {
    /// The resource the leg ran on; `None` for pure delays.
    pub resource: Option<ResourceId>,
    /// The kind of work performed.
    pub kind: LegKind,
    /// Payload bytes for transfers (0 otherwise).
    pub bytes: u64,
    /// Label path from enclosing [`CostExpr::Tagged`](crate::CostExpr)
    /// nodes, if any (outermost first, `/`-joined).
    pub label: Option<Arc<str>>,
    /// When the leg became runnable (all predecessors done): queue entry.
    pub queued_at: SimTime,
    /// When the resource actually started serving it; the gap after
    /// `queued_at` is time spent queueing behind other legs.
    pub service_start: SimTime,
    /// When the leg completed (including any pipelined latency).
    pub completed_at: SimTime,
}

impl LegRecord {
    /// Nanoseconds the leg waited for its resource.
    pub fn queue_nanos(&self) -> u64 {
        self.service_start
            .as_nanos()
            .saturating_sub(self.queued_at.as_nanos())
    }

    /// Nanoseconds from service start to completion.
    pub fn service_nanos(&self) -> u64 {
        self.completed_at
            .as_nanos()
            .saturating_sub(self.service_start.as_nanos())
    }
}

/// Receiver for flow-engine trace events.
///
/// Implementations must be cheap: the engine calls [`TraceSink::leg`] once
/// per executed leg while holding no locks of its own. All methods have
/// empty defaults so sinks implement only what they need.
pub trait TraceSink: Send {
    /// A flow was started (its cost tree entered the event queue).
    fn flow_started(&self, _tag: u64, _at: SimTime) {}

    /// One leg of a flow executed. Structural no-op legs are not reported.
    fn leg(&self, _tag: u64, _leg: &LegRecord) {}

    /// A flow completed (every leg done) at `at`.
    fn flow_completed(&self, _tag: u64, _at: SimTime) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leg_record_splits_queue_and_service() {
        let leg = LegRecord {
            resource: None,
            kind: LegKind::Delay,
            bytes: 0,
            label: None,
            queued_at: SimTime::from_nanos(100),
            service_start: SimTime::from_nanos(150),
            completed_at: SimTime::from_nanos(400),
        };
        assert_eq!(leg.queue_nanos(), 50);
        assert_eq!(leg.service_nanos(), 250);
    }
}
