//! Deterministic ordering of durable writes.
//!
//! The durability plane (`dedup-store`'s WAL backend) must be able to
//! enumerate *every* point at which state reaches stable storage, so a
//! crash-injection harness can kill the store at each one. The
//! [`FsyncSequencer`] is that enumeration: every durable write — a WAL
//! append, a checkpoint segment write, a MANIFEST replace, a log
//! truncation — claims the next ticket from a single atomic counter before
//! it takes effect. Ticket numbers are the crash-point namespace: "crash at
//! point k" means the write holding ticket k (and everything after it)
//! never reaches stable storage.
//!
//! The sequencer also keeps a bounded journal of `(ticket, label, arg)`
//! triples so the harness and the design docs can name each point
//! ("wal.append osd=3") instead of guessing from the number. The journal
//! is capped; benchmarks that push millions of appends keep counting
//! without accumulating memory.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Journal entries kept before the sequencer stops recording labels.
/// Counting continues past the cap; only the labels are dropped.
pub const FSYNC_JOURNAL_CAP: usize = 1 << 16;

/// One recorded durable write: ticket number, a static label naming the
/// kind of write, and a numeric argument (OSD index, segment ordinal...).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FsyncRecord {
    /// Ticket claimed by the write (0-based, dense while nothing crashes).
    pub ticket: u64,
    /// What kind of durable write this was (e.g. `"wal.append"`).
    pub label: &'static str,
    /// Which instance (OSD index for appends, ordinal for segments).
    pub arg: u64,
}

/// A monotone ticket dispenser for durable writes.
///
/// Thread-safe; tickets are claimed with one atomic op. The journal lock
/// is only taken while the journal is below [`FSYNC_JOURNAL_CAP`].
#[derive(Debug, Default)]
pub struct FsyncSequencer {
    next: AtomicU64,
    journal: Mutex<Vec<FsyncRecord>>,
}

impl FsyncSequencer {
    /// Creates a sequencer with ticket 0 up next.
    pub fn new() -> Self {
        Self::default()
    }

    /// Claims the next ticket for a durable write and journals it.
    pub fn claim(&self, label: &'static str, arg: u64) -> u64 {
        let ticket = self.next.fetch_add(1, Ordering::Relaxed);
        if (ticket as usize) < FSYNC_JOURNAL_CAP {
            self.journal
                .lock()
                .expect("fsync journal")
                .push(FsyncRecord { ticket, label, arg });
        }
        ticket
    }

    /// Durable writes sequenced so far (equivalently: the next ticket).
    pub fn count(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Snapshot of the journal (at most [`FSYNC_JOURNAL_CAP`] entries).
    pub fn journal(&self) -> Vec<FsyncRecord> {
        self.journal.lock().expect("fsync journal").clone()
    }

    /// Resets the counter and journal (a fresh enumeration run).
    pub fn reset(&self) {
        self.next.store(0, Ordering::Relaxed);
        self.journal.lock().expect("fsync journal").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tickets_are_dense_and_journaled() {
        let seq = FsyncSequencer::new();
        assert_eq!(seq.claim("wal.append", 3), 0);
        assert_eq!(seq.claim("wal.manifest", 0), 1);
        assert_eq!(seq.count(), 2);
        let j = seq.journal();
        assert_eq!(j.len(), 2);
        assert_eq!(j[0].label, "wal.append");
        assert_eq!(j[0].arg, 3);
        assert_eq!(j[1].ticket, 1);
    }

    #[test]
    fn reset_starts_a_fresh_enumeration() {
        let seq = FsyncSequencer::new();
        seq.claim("wal.append", 0);
        seq.reset();
        assert_eq!(seq.count(), 0);
        assert!(seq.journal().is_empty());
        assert_eq!(seq.claim("wal.append", 1), 0);
    }
}
