//! Leg-level discrete-event execution of concurrent cost expressions.
//!
//! [`crate::ResourcePool::execute`] runs one cost tree atomically, which is
//! fine for a single measured operation but wrong for many concurrent ones:
//! an op's *early* leg must be able to use a resource before another op's
//! *late* leg arrives there, regardless of issue order. The [`FlowEngine`]
//! fixes this: each cost tree is compiled into a DAG of legs, and legs from
//! all in-flight flows interleave through one global event queue in correct
//! virtual-time order.
//!
//! # Example
//!
//! ```
//! use dedup_sim::{CostExpr, FlowEngine, ResourcePool, ResourceSpec, SimTime};
//!
//! let mut pool = ResourcePool::new();
//! let disk = pool.register(ResourceSpec::disk("d", 1 << 20, 0));
//! let mut engine = FlowEngine::new();
//! engine.start(SimTime::ZERO, &CostExpr::transfer(disk, 1 << 20), 7);
//! let done = engine.advance(&mut pool).expect("one flow");
//! assert_eq!(done.tag, 7);
//! assert_eq!(done.at, SimTime::from_secs(1));
//! ```

use std::fmt;
use std::sync::Arc;

use crate::cost::CostExpr;
use crate::driver::EventQueue;
use crate::resource::{ResourceId, ResourcePool};
use crate::time::{SimDuration, SimTime};
use crate::trace::{LegKind, LegRecord, TraceSink};

/// One executable leg of a flow.
#[derive(Debug, Clone, Copy)]
enum Step {
    Transfer(ResourceId, u64),
    Busy(ResourceId, u64),
    Delay(u64),
    /// Structural node (join/fork point); takes no time.
    Nop,
}

#[derive(Debug, Clone)]
struct FlowNode {
    step: Step,
    /// Label path from enclosing `CostExpr::Tagged` nodes (tracing only).
    label: Option<Arc<str>>,
    succs: Vec<usize>,
    preds_left: usize,
    /// Latest predecessor completion seen so far.
    ready_at: SimTime,
}

#[derive(Debug, Clone)]
struct Flow {
    nodes: Vec<FlowNode>,
    remaining: usize,
    finished_at: SimTime,
    tag: u64,
}

/// A completed flow: when it finished and the caller's tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowCompletion {
    /// Virtual completion time of the whole cost tree.
    pub at: SimTime,
    /// The tag passed to [`FlowEngine::start`].
    pub tag: u64,
}

/// Executes many cost trees concurrently with correct leg interleaving.
#[derive(Default)]
pub struct FlowEngine {
    events: EventQueue<(usize, usize)>,
    flows: Vec<Option<Flow>>,
    free_slots: Vec<usize>,
    in_flight: usize,
    /// Legs started but not yet executed, indexed by resource (grown on
    /// demand). Delays and structural nodes are not counted.
    pending_legs: Vec<usize>,
    /// Optional trace receiver; `None` disables all reporting.
    sink: Option<Box<dyn TraceSink>>,
}

impl fmt::Debug for FlowEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FlowEngine")
            .field("in_flight", &self.in_flight)
            .field("flows", &self.flows)
            .field("pending_legs", &self.pending_legs)
            .field("traced", &self.sink.is_some())
            .finish_non_exhaustive()
    }
}

impl FlowEngine {
    /// Creates an idle engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of flows currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Attaches a trace sink; every subsequently executed leg is reported
    /// to it. Tracing never changes virtual-time results.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// Detaches the trace sink, returning reporting to the free path.
    pub fn clear_trace_sink(&mut self) {
        self.sink = None;
    }

    /// Whether a trace sink is attached.
    pub fn is_traced(&self) -> bool {
        self.sink.is_some()
    }

    /// Number of started-but-unexecuted legs targeting `resource` right
    /// now — per-resource contention visible without tracing.
    pub fn pending_legs(&self, resource: ResourceId) -> usize {
        self.pending_legs
            .get(resource.index())
            .copied()
            .unwrap_or(0)
    }

    /// Time of the next pending leg, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.events.peek_time()
    }

    /// Starts executing `cost` at virtual time `at`. The flow completes
    /// when every leg has run; [`FlowEngine::advance`] reports it with
    /// `tag`.
    pub fn start(&mut self, at: SimTime, cost: &CostExpr, tag: u64) {
        let mut nodes = Vec::new();
        let (entries, _exits) = compile(cost, &mut nodes, None);
        if nodes.is_empty() {
            // Pure no-op: model as a single structural node so the flow
            // still completes through the queue (usable as a timer).
            nodes.push(FlowNode {
                step: Step::Nop,
                label: None,
                succs: Vec::new(),
                preds_left: 0,
                ready_at: at,
            });
        }
        for node in &nodes {
            if let Step::Transfer(r, _) | Step::Busy(r, _) = node.step {
                let i = r.index();
                if self.pending_legs.len() <= i {
                    self.pending_legs.resize(i + 1, 0);
                }
                self.pending_legs[i] += 1;
            }
        }
        let remaining = nodes.len();
        let flow = Flow {
            nodes,
            remaining,
            finished_at: at,
            tag,
        };
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.flows[s] = Some(flow);
                s
            }
            None => {
                self.flows.push(Some(flow));
                self.flows.len() - 1
            }
        };
        self.in_flight += 1;
        if let Some(sink) = &self.sink {
            sink.flow_started(tag, at);
        }
        let flow = self.flows[slot].as_mut().expect("just inserted");
        if entries.is_empty() {
            // The synthetic Nop node is the only entry.
            flow.nodes[0].ready_at = at;
            self.events.push(at, (slot, 0));
        } else {
            for e in entries {
                flow.nodes[e].ready_at = at;
                self.events.push(at, (slot, e));
            }
        }
    }

    /// Processes every pending leg scheduled at or before `until`,
    /// returning the flows that completed. Use this to interleave flow
    /// execution with externally timed events (open-loop op issue): unlike
    /// [`FlowEngine::advance`], it never runs past `until`, so flows
    /// started afterwards at times `>= until` keep resource service in
    /// virtual-time order.
    pub fn advance_until(
        &mut self,
        pool: &mut ResourcePool,
        until: SimTime,
    ) -> Vec<FlowCompletion> {
        let mut completions = Vec::new();
        while self.events.peek_time().is_some_and(|t| t <= until) {
            let ev = self.events.pop().expect("peeked");
            if let Some(c) = self.process(pool, ev.at, ev.payload) {
                completions.push(c);
            }
        }
        completions
    }

    /// Processes pending legs in time order until some flow completes;
    /// returns it, or `None` when nothing is in flight.
    pub fn advance(&mut self, pool: &mut ResourcePool) -> Option<FlowCompletion> {
        while let Some(ev) = self.events.pop() {
            if let Some(c) = self.process(pool, ev.at, ev.payload) {
                return Some(c);
            }
        }
        None
    }

    /// Executes one leg; returns the flow's completion if it was the last.
    fn process(
        &mut self,
        pool: &mut ResourcePool,
        at: SimTime,
        (slot, node_idx): (usize, usize),
    ) -> Option<FlowCompletion> {
        let flow = self.flows[slot].as_mut().expect("live flow");
        let node = &flow.nodes[node_idx];
        let ready = node.ready_at.max(at);
        // `service_start` mirrors the `now.max(next_free)` the resource
        // computes inside `serve`; reading it here lets tracing separate
        // queueing from service without perturbing the serving path.
        let (done, service_start) = match node.step {
            Step::Transfer(r, bytes) => {
                let res = pool.get_mut(r);
                let start = ready.max(res.next_free());
                (res.serve(ready, bytes), start)
            }
            Step::Busy(r, nanos) => {
                let res = pool.get_mut(r);
                let start = ready.max(res.next_free());
                (res.serve_for(ready, SimDuration::from_nanos(nanos)), start)
            }
            Step::Delay(nanos) => (ready + SimDuration::from_nanos(nanos), ready),
            Step::Nop => (ready, ready),
        };
        if let Step::Transfer(r, _) | Step::Busy(r, _) = node.step {
            self.pending_legs[r.index()] -= 1;
        }
        if let Some(sink) = &self.sink {
            let record = match node.step {
                Step::Transfer(r, bytes) => Some((Some(r), LegKind::Transfer, bytes)),
                Step::Busy(r, _) => Some((Some(r), LegKind::Busy, 0)),
                Step::Delay(_) => Some((None, LegKind::Delay, 0)),
                Step::Nop => None,
            };
            if let Some((resource, kind, bytes)) = record {
                sink.leg(
                    flow.tag,
                    &LegRecord {
                        resource,
                        kind,
                        bytes,
                        label: node.label.clone(),
                        queued_at: ready,
                        service_start,
                        completed_at: done,
                    },
                );
            }
        }
        flow.finished_at = flow.finished_at.max(done);
        flow.remaining -= 1;
        let succs = flow.nodes[node_idx].succs.clone();
        for s in succs {
            let succ = &mut flow.nodes[s];
            succ.ready_at = succ.ready_at.max(done);
            succ.preds_left -= 1;
            if succ.preds_left == 0 {
                self.events.push(succ.ready_at, (slot, s));
            }
        }
        if flow.remaining == 0 {
            let completion = FlowCompletion {
                at: flow.finished_at,
                tag: flow.tag,
            };
            self.flows[slot] = None;
            self.free_slots.push(slot);
            self.in_flight -= 1;
            if let Some(sink) = &self.sink {
                sink.flow_completed(completion.tag, completion.at);
            }
            return Some(completion);
        }
        None
    }
}

/// Compiles a cost tree into DAG nodes; returns (entry ids, exit ids).
/// `label` is the label path accumulated from enclosing `Tagged` nodes.
fn compile(
    cost: &CostExpr,
    nodes: &mut Vec<FlowNode>,
    label: Option<&Arc<str>>,
) -> (Vec<usize>, Vec<usize>) {
    match cost {
        CostExpr::Nop => (Vec::new(), Vec::new()),
        CostExpr::Transfer { resource, bytes } => {
            let id = push_leaf(nodes, Step::Transfer(*resource, *bytes), label);
            (vec![id], vec![id])
        }
        CostExpr::Busy { resource, nanos } => {
            let id = push_leaf(nodes, Step::Busy(*resource, *nanos), label);
            (vec![id], vec![id])
        }
        CostExpr::Delay(nanos) => {
            let id = push_leaf(nodes, Step::Delay(*nanos), label);
            (vec![id], vec![id])
        }
        CostExpr::Seq(parts) => {
            let mut entries: Vec<usize> = Vec::new();
            let mut exits: Vec<usize> = Vec::new();
            for part in parts {
                let (e, x) = compile(part, nodes, label);
                if e.is_empty() {
                    continue; // nested no-op
                }
                if entries.is_empty() {
                    entries = e;
                } else {
                    // Fan in: every previous exit precedes every new entry.
                    // With multiple exits and entries, insert a join node to
                    // keep edge counts simple.
                    let (froms, tos) = if exits.len() > 1 && e.len() > 1 {
                        let join = push_leaf(nodes, Step::Nop, None);
                        connect(nodes, &exits, &[join]);
                        (vec![join], e)
                    } else {
                        (exits.clone(), e)
                    };
                    connect(nodes, &froms, &tos);
                }
                exits = x;
            }
            (entries, exits)
        }
        CostExpr::Par(parts) => {
            let mut entries = Vec::new();
            let mut exits = Vec::new();
            for part in parts {
                let (e, x) = compile(part, nodes, label);
                entries.extend(e);
                exits.extend(x);
            }
            (entries, exits)
        }
        CostExpr::Tagged { label: l, inner } => {
            let combined = match label {
                None => l.clone(),
                Some(outer) => Arc::from(format!("{outer}/{l}")),
            };
            compile(inner, nodes, Some(&combined))
        }
    }
}

fn push_leaf(nodes: &mut Vec<FlowNode>, step: Step, label: Option<&Arc<str>>) -> usize {
    nodes.push(FlowNode {
        step,
        label: label.cloned(),
        succs: Vec::new(),
        preds_left: 0,
        ready_at: SimTime::ZERO,
    });
    nodes.len() - 1
}

fn connect(nodes: &mut [FlowNode], froms: &[usize], tos: &[usize]) {
    for &f in froms {
        for &t in tos {
            nodes[f].succs.push(t);
            nodes[t].preds_left += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::ResourceSpec;

    fn pool2() -> (ResourcePool, ResourceId, ResourceId) {
        let mut pool = ResourcePool::new();
        let a = pool.register(ResourceSpec::disk("a", 1 << 20, 0));
        let b = pool.register(ResourceSpec::disk("b", 1 << 20, 0));
        (pool, a, b)
    }

    #[test]
    fn single_flow_matches_monolithic_execute() {
        let (mut pool, a, b) = pool2();
        let cost = CostExpr::seq([
            CostExpr::transfer(a, 1 << 20),
            CostExpr::par([
                CostExpr::transfer(b, 1 << 20),
                CostExpr::transfer(a, 1 << 19),
            ]),
        ]);
        let mut reference_pool = pool.clone();
        let expect = reference_pool.execute(SimTime::ZERO, &cost);
        let mut engine = FlowEngine::new();
        engine.start(SimTime::ZERO, &cost, 1);
        let done = engine.advance(&mut pool).expect("flow");
        assert_eq!(done.at, expect);
    }

    #[test]
    fn later_ops_early_legs_do_not_wait_for_earlier_ops_late_legs() {
        // Flow 1 (issued first): long leg on A, then a leg on B.
        // Flow 2 (issued second): leg on B immediately.
        // Correct interleaving lets flow 2 use B at t=0.
        let (mut pool, a, b) = pool2();
        let f1 = CostExpr::seq([
            CostExpr::transfer(a, 2 << 20),
            CostExpr::transfer(b, 1 << 20),
        ]);
        let f2 = CostExpr::transfer(b, 1 << 20);
        let mut engine = FlowEngine::new();
        engine.start(SimTime::ZERO, &f1, 1);
        engine.start(SimTime::ZERO, &f2, 2);
        let first = engine.advance(&mut pool).expect("flow");
        assert_eq!(first.tag, 2, "independent op finishes first");
        assert_eq!(first.at, SimTime::from_secs(1), "no false queueing on B");
        let second = engine.advance(&mut pool).expect("flow");
        assert_eq!(second.tag, 1);
        assert_eq!(second.at, SimTime::from_secs(3), "2s on A then 1s on B");
    }

    #[test]
    fn contention_on_same_resource_is_still_serialized() {
        let (mut pool, a, _) = pool2();
        let mut engine = FlowEngine::new();
        engine.start(SimTime::ZERO, &CostExpr::transfer(a, 1 << 20), 1);
        engine.start(SimTime::ZERO, &CostExpr::transfer(a, 1 << 20), 2);
        let t1 = engine.advance(&mut pool).expect("flow");
        let t2 = engine.advance(&mut pool).expect("flow");
        assert_eq!(t1.at, SimTime::from_secs(1));
        assert_eq!(t2.at, SimTime::from_secs(2));
    }

    #[test]
    fn nop_flow_acts_as_timer() {
        let mut pool = ResourcePool::new();
        let mut engine = FlowEngine::new();
        engine.start(SimTime::from_secs(5), &CostExpr::Nop, 9);
        let done = engine.advance(&mut pool).expect("flow");
        assert_eq!(done.at, SimTime::from_secs(5));
        assert_eq!(done.tag, 9);
        assert!(engine.advance(&mut pool).is_none());
    }

    #[test]
    fn par_join_waits_for_slowest_branch() {
        let (mut pool, a, b) = pool2();
        let cost = CostExpr::seq([
            CostExpr::par([
                CostExpr::transfer(a, 3 << 20),
                CostExpr::transfer(b, 1 << 20),
            ]),
            CostExpr::transfer(b, 1 << 20),
        ]);
        let mut engine = FlowEngine::new();
        engine.start(SimTime::ZERO, &cost, 1);
        let done = engine.advance(&mut pool).expect("flow");
        assert_eq!(done.at, SimTime::from_secs(4), "3s par then 1s");
    }

    #[test]
    fn many_concurrent_flows_all_complete() {
        let (mut pool, a, b) = pool2();
        let mut engine = FlowEngine::new();
        for i in 0..100u64 {
            let cost = CostExpr::seq([CostExpr::transfer(a, 1024), CostExpr::transfer(b, 1024)]);
            engine.start(SimTime::from_nanos(i), &cost, i);
            assert_eq!(engine.in_flight(), i as usize + 1);
        }
        let mut seen = std::collections::HashSet::new();
        while let Some(c) = engine.advance(&mut pool) {
            seen.insert(c.tag);
        }
        assert_eq!(seen.len(), 100);
        assert_eq!(engine.in_flight(), 0);
    }

    #[derive(Default, Clone)]
    struct RecordingSink {
        legs: std::sync::Arc<std::sync::Mutex<Vec<(u64, LegRecord)>>>,
        completions: std::sync::Arc<std::sync::Mutex<Vec<(u64, SimTime)>>>,
    }

    impl TraceSink for RecordingSink {
        fn leg(&self, tag: u64, leg: &LegRecord) {
            self.legs.lock().unwrap().push((tag, leg.clone()));
        }
        fn flow_completed(&self, tag: u64, at: SimTime) {
            self.completions.lock().unwrap().push((tag, at));
        }
    }

    #[test]
    fn sink_sees_queue_and_service_separately() {
        let (mut pool, a, _) = pool2();
        let sink = RecordingSink::default();
        let mut engine = FlowEngine::new();
        engine.set_trace_sink(Box::new(sink.clone()));
        // Two 1 MiB transfers on the same 1 MiB/s disk: the second queues
        // a full second behind the first.
        engine.start(SimTime::ZERO, &CostExpr::transfer(a, 1 << 20), 1);
        engine.start(SimTime::ZERO, &CostExpr::transfer(a, 1 << 20), 2);
        while engine.advance(&mut pool).is_some() {}
        let legs = sink.legs.lock().unwrap();
        assert_eq!(legs.len(), 2);
        let first = &legs[0].1;
        let second = &legs[1].1;
        assert_eq!(first.queue_nanos(), 0);
        assert_eq!(first.service_nanos(), 1_000_000_000);
        assert_eq!(second.queue_nanos(), 1_000_000_000, "queued behind first");
        assert_eq!(second.service_nanos(), 1_000_000_000);
        assert_eq!(second.resource, Some(a));
        assert_eq!(sink.completions.lock().unwrap().len(), 2);
    }

    #[test]
    fn sink_sees_nested_labels_as_paths() {
        let (mut pool, a, b) = pool2();
        let sink = RecordingSink::default();
        let mut engine = FlowEngine::new();
        engine.set_trace_sink(Box::new(sink.clone()));
        let cost = CostExpr::tagged(
            "read",
            CostExpr::seq([
                CostExpr::tagged("lookup", CostExpr::transfer(a, 64)),
                CostExpr::transfer(b, 4096),
            ]),
        );
        engine.start(SimTime::ZERO, &cost, 7);
        while engine.advance(&mut pool).is_some() {}
        let legs = sink.legs.lock().unwrap();
        let labels: Vec<Option<String>> = legs
            .iter()
            .map(|(_, l)| l.label.as_deref().map(String::from))
            .collect();
        assert_eq!(
            labels,
            vec![Some("read/lookup".to_string()), Some("read".to_string())]
        );
    }

    #[test]
    fn tracing_does_not_change_completion_times() {
        let (mut traced_pool, a, b) = pool2();
        let mut plain_pool = traced_pool.clone();
        let cost = CostExpr::seq([
            CostExpr::transfer(a, 1 << 20),
            CostExpr::par([
                CostExpr::transfer(b, 1 << 20),
                CostExpr::transfer(a, 1 << 19),
            ]),
        ]);
        let tagged = CostExpr::tagged("op", cost.clone());
        let mut plain = FlowEngine::new();
        plain.start(SimTime::ZERO, &cost, 1);
        let expect = plain.advance(&mut plain_pool).expect("flow");
        let mut traced = FlowEngine::new();
        traced.set_trace_sink(Box::new(RecordingSink::default()));
        traced.start(SimTime::ZERO, &tagged, 1);
        let got = traced.advance(&mut traced_pool).expect("flow");
        assert_eq!(got.at, expect.at);
    }

    #[test]
    fn pending_legs_track_per_resource_backlog() {
        let (mut pool, a, b) = pool2();
        let mut engine = FlowEngine::new();
        let cost = CostExpr::seq([
            CostExpr::transfer(a, 1 << 20),
            CostExpr::transfer(b, 1 << 20),
        ]);
        engine.start(SimTime::ZERO, &cost, 1);
        engine.start(SimTime::ZERO, &CostExpr::transfer(a, 1 << 20), 2);
        assert_eq!(engine.pending_legs(a), 2);
        assert_eq!(engine.pending_legs(b), 1);
        while engine.advance(&mut pool).is_some() {}
        assert_eq!(engine.pending_legs(a), 0);
        assert_eq!(engine.pending_legs(b), 0);
    }

    #[test]
    fn slots_are_reused() {
        let (mut pool, a, _) = pool2();
        let mut engine = FlowEngine::new();
        for i in 0..10 {
            engine.start(SimTime::ZERO, &CostExpr::transfer(a, 1), i);
            let _ = engine.advance(&mut pool).expect("flow");
        }
        assert!(engine.flows.len() <= 2, "slots must be recycled");
    }
}

#[cfg(test)]
mod flow_proptests {
    use super::*;
    use crate::resource::ResourceSpec;
    use proptest::prelude::*;

    /// Random cost trees over a small resource set.
    fn cost_strategy(depth: u32) -> impl Strategy<Value = CostExpr> {
        let leaf = prop_oneof![
            (0u32..4, 1u64..100_000).prop_map(|(r, b)| CostExpr::Transfer {
                resource: crate::resource::ResourceId(r),
                bytes: b,
            }),
            (0u32..4, 1u64..1_000_000).prop_map(|(r, n)| CostExpr::Busy {
                resource: crate::resource::ResourceId(r),
                nanos: n,
            }),
            (1u64..1_000_000).prop_map(CostExpr::Delay),
            Just(CostExpr::Nop),
        ];
        leaf.prop_recursive(depth, 24, 4, |inner| {
            prop_oneof![
                proptest::collection::vec(inner.clone(), 1..4).prop_map(CostExpr::Seq),
                proptest::collection::vec(inner, 1..4).prop_map(CostExpr::Par),
            ]
        })
    }

    fn small_pool() -> ResourcePool {
        let mut pool = ResourcePool::new();
        for i in 0..4 {
            pool.register(ResourceSpec::disk(format!("r{i}"), 10 << 20, 50_000));
        }
        pool
    }

    /// A sequential-only tree (no `Par`): the engine and the monolithic
    /// executor must agree exactly.
    fn seq_only_strategy() -> impl Strategy<Value = CostExpr> {
        let leaf = prop_oneof![
            (0u32..4, 1u64..100_000).prop_map(|(r, b)| CostExpr::Transfer {
                resource: crate::resource::ResourceId(r),
                bytes: b,
            }),
            (0u32..4, 1u64..1_000_000).prop_map(|(r, n)| CostExpr::Busy {
                resource: crate::resource::ResourceId(r),
                nanos: n,
            }),
            (1u64..1_000_000).prop_map(CostExpr::Delay),
        ];
        proptest::collection::vec(leaf, 1..12).prop_map(CostExpr::Seq)
    }

    proptest! {
        /// On `Par`-free trees the engine is bit-identical to the
        /// monolithic executor. (With `Par`, the two use different — both
        /// valid — FIFO tie-breaks when branches share a resource, so only
        /// the sequential case pins exact equality.)
        #[test]
        fn single_seq_flow_matches_execute(cost in seq_only_strategy()) {
            let mut a = small_pool();
            let expect = a.execute(SimTime::ZERO, &cost);
            let mut b = small_pool();
            let mut engine = FlowEngine::new();
            engine.start(SimTime::ZERO, &cost, 1);
            let done = engine.advance(&mut b).expect("flow completes");
            prop_assert_eq!(done.at, expect);
            prop_assert!(engine.advance(&mut b).is_none());
        }

        /// Any single flow completes no earlier than its longest pure
        /// chain of delays would allow and consumes exactly its own busy
        /// time on the pool.
        #[test]
        fn single_flow_conserves_busy_time(cost in cost_strategy(3)) {
            let mut pool = small_pool();
            let mut engine = FlowEngine::new();
            engine.start(SimTime::ZERO, &cost, 1);
            let done = engine.advance(&mut pool).expect("flow completes");
            // Busy-time conservation: total serial time equals the sum of
            // the tree's transfers/busies, independent of interleaving.
            fn serial_nanos(c: &CostExpr) -> u64 {
                match c {
                    CostExpr::Transfer { bytes, .. } => bytes * 1_000_000_000 / (10 << 20),
                    CostExpr::Busy { nanos, .. } => *nanos,
                    CostExpr::Seq(p) | CostExpr::Par(p) => p.iter().map(serial_nanos).sum(),
                    _ => 0,
                }
            }
            let total_busy: u64 = pool
                .iter()
                .map(|(_, r)| r.busy_time().as_nanos())
                .sum();
            let expect = serial_nanos(&cost);
            // Integer division per leg loses < 1ns per transfer; allow 64.
            prop_assert!(total_busy.abs_diff(expect) <= 64, "{total_busy} vs {expect}");
            prop_assert!(done.at >= SimTime::ZERO);
        }

        /// Concurrent flows: every flow completes exactly once and never
        /// earlier than its isolated execution (contention only delays).
        #[test]
        fn contention_never_speeds_a_flow_up(
            costs in proptest::collection::vec(seq_only_strategy(), 1..8),
        ) {
            let mut isolated = Vec::new();
            for c in &costs {
                let mut p = small_pool();
                isolated.push(p.execute(SimTime::ZERO, c));
            }
            let mut pool = small_pool();
            let mut engine = FlowEngine::new();
            for (i, c) in costs.iter().enumerate() {
                engine.start(SimTime::ZERO, c, i as u64);
            }
            let mut seen = std::collections::HashSet::new();
            while let Some(c) = engine.advance(&mut pool) {
                prop_assert!(seen.insert(c.tag), "duplicate completion");
                prop_assert!(
                    c.at >= isolated[c.tag as usize],
                    "contention cannot make a flow faster"
                );
            }
            prop_assert_eq!(seen.len(), costs.len());
        }
    }
}
