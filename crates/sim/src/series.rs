//! Time-binned series for throughput/IOPS timelines (paper Figs. 5b & 14).

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// One bin of a [`TimeSeries`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TimeBin {
    /// Operations completed in this bin.
    pub ops: u64,
    /// Payload bytes completed in this bin.
    pub bytes: u64,
}

impl TimeBin {
    /// Throughput over the bin in MB/s given the bin width in seconds.
    pub fn mb_per_sec(&self, bin_secs: f64) -> f64 {
        self.bytes as f64 / 1e6 / bin_secs
    }

    /// Operation rate over the bin given the bin width in seconds.
    pub fn ops_per_sec(&self, bin_secs: f64) -> f64 {
        self.ops as f64 / bin_secs
    }
}

/// Completion events bucketed into fixed-width virtual-time bins.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeSeries {
    bin_nanos: u64,
    bins: Vec<TimeBin>,
}

impl TimeSeries {
    /// Creates a series with the given bin width in virtual seconds.
    ///
    /// # Panics
    ///
    /// Panics if `bin_secs` is zero.
    pub fn with_bin_secs(bin_secs: u64) -> Self {
        assert!(bin_secs > 0, "bin width must be positive");
        TimeSeries {
            bin_nanos: bin_secs * 1_000_000_000,
            bins: Vec::new(),
        }
    }

    /// Records an operation of `bytes` completing at `at`.
    pub fn record(&mut self, at: SimTime, bytes: u64) {
        let idx = (at.as_nanos() / self.bin_nanos) as usize;
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, TimeBin::default());
        }
        self.bins[idx].ops += 1;
        self.bins[idx].bytes += bytes;
    }

    /// Bin width in seconds.
    pub fn bin_secs(&self) -> f64 {
        self.bin_nanos as f64 / 1e9
    }

    /// All bins, index 0 covering `[0, bin)`.
    pub fn bins(&self) -> &[TimeBin] {
        &self.bins
    }

    /// Number of bins (i.e. the covered horizon).
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// Throughput per bin in MB/s.
    pub fn throughput_mbps(&self) -> Vec<f64> {
        let w = self.bin_secs();
        self.bins.iter().map(|b| b.mb_per_sec(w)).collect()
    }

    /// IOPS per bin.
    pub fn iops(&self) -> Vec<f64> {
        let w = self.bin_secs();
        self.bins.iter().map(|b| b.ops_per_sec(w)).collect()
    }

    /// Mean throughput in MB/s over bins `[from, to)`, clamped to the data.
    pub fn mean_throughput_mbps(&self, from: usize, to: usize) -> f64 {
        let to = to.min(self.bins.len());
        if from >= to {
            return 0.0;
        }
        let bytes: u64 = self.bins[from..to].iter().map(|b| b.bytes).sum();
        bytes as f64 / 1e6 / ((to - from) as f64 * self.bin_secs())
    }

    /// Total bytes recorded.
    pub fn total_bytes(&self) -> u64 {
        self.bins.iter().map(|b| b.bytes).sum()
    }

    /// Total operations recorded.
    pub fn total_ops(&self) -> u64 {
        self.bins.iter().map(|b| b.ops).sum()
    }
}

impl Default for TimeSeries {
    fn default() -> Self {
        TimeSeries::with_bin_secs(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_correct_bins() {
        let mut s = TimeSeries::with_bin_secs(1);
        s.record(SimTime::from_nanos(10), 100);
        s.record(SimTime::from_secs(2), 300);
        assert_eq!(s.len(), 3);
        assert_eq!(s.bins()[0].bytes, 100);
        assert_eq!(s.bins()[1].bytes, 0);
        assert_eq!(s.bins()[2].bytes, 300);
    }

    #[test]
    fn throughput_is_bytes_over_width() {
        let mut s = TimeSeries::with_bin_secs(2);
        s.record(SimTime::from_secs(1), 4_000_000);
        let t = s.throughput_mbps();
        assert!((t[0] - 2.0).abs() < 1e-9, "4 MB over 2 s = 2 MB/s");
    }

    #[test]
    fn mean_throughput_window_clamps() {
        let mut s = TimeSeries::with_bin_secs(1);
        s.record(SimTime::from_secs(0), 1_000_000);
        s.record(SimTime::from_secs(1), 3_000_000);
        assert!((s.mean_throughput_mbps(0, 10) - 2.0).abs() < 1e-9);
        assert_eq!(s.mean_throughput_mbps(5, 3), 0.0);
    }

    #[test]
    fn totals() {
        let mut s = TimeSeries::default();
        s.record(SimTime::ZERO, 10);
        s.record(SimTime::ZERO, 20);
        assert_eq!(s.total_bytes(), 30);
        assert_eq!(s.total_ops(), 2);
        assert!(!s.is_empty());
    }
}
