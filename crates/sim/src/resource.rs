//! FIFO queueing resources: disks, NICs, CPU cores.
//!
//! Each [`Resource`] models a device with a *serial* section (bandwidth-bound
//! transfer that occupies the device) followed by a *pipelined* fixed latency
//! (paid by the request but not occupying the device). This captures the
//! first-order behaviour of SSDs and network links: throughput saturates at
//! the device rate while independent requests overlap their latencies.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// Handle to a resource registered in a [`ResourcePool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ResourceId(pub(crate) u32);

impl ResourceId {
    /// The raw index of this resource in its pool.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Static description of a device used to construct a [`Resource`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceSpec {
    /// Human-readable name, e.g. `"osd.3/disk"`.
    pub name: String,
    /// Serial transfer rate in bytes per second; `0` means unlimited.
    pub bytes_per_sec: u64,
    /// Fixed pipelined latency added to every request, in nanoseconds.
    pub latency_nanos: u64,
}

impl ResourceSpec {
    /// A disk-like device: bandwidth-bound with per-op access latency.
    pub fn disk(name: impl Into<String>, bytes_per_sec: u64, latency_nanos: u64) -> Self {
        ResourceSpec {
            name: name.into(),
            bytes_per_sec,
            latency_nanos,
        }
    }

    /// A network link: bandwidth plus one-way propagation latency.
    pub fn nic(name: impl Into<String>, bytes_per_sec: u64, latency_nanos: u64) -> Self {
        ResourceSpec {
            name: name.into(),
            bytes_per_sec,
            latency_nanos,
        }
    }

    /// A CPU modelled as a byte-processing engine (e.g. fingerprinting at
    /// `bytes_per_sec`), with no fixed latency.
    pub fn cpu(name: impl Into<String>, bytes_per_sec: u64) -> Self {
        ResourceSpec {
            name: name.into(),
            bytes_per_sec,
            latency_nanos: 0,
        }
    }
}

/// Runtime state of a queueing resource.
#[derive(Debug, Clone)]
pub struct Resource {
    spec: ResourceSpec,
    /// Virtual time at which the serial section becomes free.
    next_free: SimTime,
    /// Accumulated busy time of the serial section.
    busy: SimDuration,
    /// Total bytes moved through the serial section.
    bytes_served: u64,
    /// Total requests served.
    requests: u64,
    /// Maximum queueing delay observed (start - arrival).
    max_wait: SimDuration,
    /// Sum of queueing delays (for mean wait).
    total_wait: SimDuration,
}

impl Resource {
    fn new(spec: ResourceSpec) -> Self {
        Resource {
            spec,
            next_free: SimTime::ZERO,
            busy: SimDuration::ZERO,
            bytes_served: 0,
            requests: 0,
            max_wait: SimDuration::ZERO,
            total_wait: SimDuration::ZERO,
        }
    }

    /// The spec this resource was built from.
    pub fn spec(&self) -> &ResourceSpec {
        &self.spec
    }

    /// Serves a request of `bytes` arriving at `now`; returns its completion
    /// time. The serial (bandwidth) section queues FIFO behind earlier
    /// requests; the fixed latency is pipelined.
    pub fn serve(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let start = now.max(self.next_free);
        let wait = start.saturating_since(now);
        self.max_wait = self.max_wait.max(wait);
        self.total_wait += wait;
        let transfer = SimDuration::for_transfer(bytes, self.spec.bytes_per_sec);
        self.next_free = start + transfer;
        self.busy += transfer;
        self.bytes_served += bytes;
        self.requests += 1;
        self.next_free + SimDuration::from_nanos(self.spec.latency_nanos)
    }

    /// Serves a request that occupies the device for a fixed `duration`
    /// (e.g. a CPU work item with known cost) arriving at `now`.
    pub fn serve_for(&mut self, now: SimTime, duration: SimDuration) -> SimTime {
        let start = now.max(self.next_free);
        let wait = start.saturating_since(now);
        self.max_wait = self.max_wait.max(wait);
        self.total_wait += wait;
        self.next_free = start + duration;
        self.busy += duration;
        self.requests += 1;
        self.next_free
    }

    /// Accumulated busy time of the serial section.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Virtual time at which the serial section becomes free: a request
    /// arriving at `now` starts service at `now.max(next_free())`. Lets
    /// tracing separate queueing delay from service time without touching
    /// the serving path.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Utilisation of the serial section over `[SimTime::ZERO, until]`.
    pub fn utilization(&self, until: SimTime) -> f64 {
        if until == SimTime::ZERO {
            return 0.0;
        }
        (self.busy.as_secs_f64() / until.as_secs_f64()).min(1.0)
    }

    /// Total bytes moved through the serial section.
    pub fn bytes_served(&self) -> u64 {
        self.bytes_served
    }

    /// Total requests served.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Maximum queueing delay any request experienced.
    pub fn max_wait(&self) -> SimDuration {
        self.max_wait
    }

    /// Mean queueing delay across requests.
    pub fn mean_wait(&self) -> SimDuration {
        if self.requests == 0 {
            return SimDuration::ZERO;
        }
        self.total_wait / self.requests
    }

    /// Forgets queue state and statistics, as if freshly constructed.
    pub fn reset(&mut self) {
        self.next_free = SimTime::ZERO;
        self.busy = SimDuration::ZERO;
        self.bytes_served = 0;
        self.requests = 0;
        self.max_wait = SimDuration::ZERO;
        self.total_wait = SimDuration::ZERO;
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} reqs, {} busy",
            self.spec.name, self.requests, self.busy
        )
    }
}

/// Registry of every resource in the simulated cluster.
///
/// Operations are charged against the pool via [`ResourcePool::execute`]
/// with a [`crate::CostExpr`] describing the resources they touch.
#[derive(Debug, Clone, Default)]
pub struct ResourcePool {
    resources: Vec<Resource>,
}

impl ResourcePool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a device and returns its handle.
    pub fn register(&mut self, spec: ResourceSpec) -> ResourceId {
        let id = ResourceId(u32::try_from(self.resources.len()).expect("too many resources"));
        self.resources.push(Resource::new(spec));
        id
    }

    /// Borrows a resource.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this pool.
    pub fn get(&self, id: ResourceId) -> &Resource {
        &self.resources[id.index()]
    }

    /// Mutably borrows a resource.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this pool.
    pub fn get_mut(&mut self, id: ResourceId) -> &mut Resource {
        &mut self.resources[id.index()]
    }

    /// Iterates over all registered resources.
    pub fn iter(&self) -> impl Iterator<Item = (ResourceId, &Resource)> {
        self.resources
            .iter()
            .enumerate()
            .map(|(i, r)| (ResourceId(i as u32), r))
    }

    /// Number of registered resources.
    pub fn len(&self) -> usize {
        self.resources.len()
    }

    /// Whether the pool has no resources.
    pub fn is_empty(&self) -> bool {
        self.resources.is_empty()
    }

    /// Resets queue state and statistics on every resource.
    pub fn reset_all(&mut self) {
        for r in &mut self.resources {
            r.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk_1mbps() -> ResourceSpec {
        ResourceSpec::disk("d", 1 << 20, 1_000_000) // 1 MiB/s, 1 ms latency
    }

    #[test]
    fn single_request_pays_transfer_plus_latency() {
        let mut pool = ResourcePool::new();
        let d = pool.register(disk_1mbps());
        let done = pool.get_mut(d).serve(SimTime::ZERO, 1 << 20);
        assert_eq!(done, SimTime::from_nanos(1_000_000_000 + 1_000_000));
    }

    #[test]
    fn requests_queue_fifo_on_bandwidth() {
        let mut pool = ResourcePool::new();
        let d = pool.register(disk_1mbps());
        let first = pool.get_mut(d).serve(SimTime::ZERO, 1 << 20);
        let second = pool.get_mut(d).serve(SimTime::ZERO, 1 << 20);
        // Second transfer starts only after the first's serial section.
        assert_eq!(second.as_nanos() - first.as_nanos(), 1_000_000_000);
    }

    #[test]
    fn latency_is_pipelined_not_serialized() {
        let mut pool = ResourcePool::new();
        // Unlimited bandwidth: only latency matters, and it overlaps.
        let d = pool.register(ResourceSpec::disk("d", 0, 5_000_000));
        let a = pool.get_mut(d).serve(SimTime::ZERO, 4096);
        let b = pool.get_mut(d).serve(SimTime::ZERO, 4096);
        assert_eq!(a, b, "independent latencies overlap");
    }

    #[test]
    fn idle_gap_does_not_accumulate_busy_time() {
        let mut pool = ResourcePool::new();
        let d = pool.register(disk_1mbps());
        pool.get_mut(d).serve(SimTime::ZERO, 1 << 20);
        pool.get_mut(d).serve(SimTime::from_secs(100), 1 << 20);
        assert_eq!(pool.get(d).busy_time(), SimDuration::from_secs(2));
        let util = pool.get(d).utilization(SimTime::from_secs(200));
        assert!((util - 0.01).abs() < 1e-9, "2s busy over 200s");
    }

    #[test]
    fn serve_for_occupies_duration() {
        let mut pool = ResourcePool::new();
        let c = pool.register(ResourceSpec::cpu("cpu", 0));
        let t1 = pool
            .get_mut(c)
            .serve_for(SimTime::ZERO, SimDuration::from_millis(10));
        let t2 = pool
            .get_mut(c)
            .serve_for(SimTime::ZERO, SimDuration::from_millis(10));
        assert_eq!(t1, SimTime::from_nanos(10_000_000));
        assert_eq!(t2, SimTime::from_nanos(20_000_000));
    }

    #[test]
    fn reset_clears_state() {
        let mut pool = ResourcePool::new();
        let d = pool.register(disk_1mbps());
        pool.get_mut(d).serve(SimTime::ZERO, 1 << 20);
        pool.reset_all();
        assert_eq!(pool.get(d).requests(), 0);
        assert_eq!(pool.get(d).busy_time(), SimDuration::ZERO);
    }

    #[test]
    fn stats_accumulate() {
        let mut pool = ResourcePool::new();
        let d = pool.register(disk_1mbps());
        pool.get_mut(d).serve(SimTime::ZERO, 100);
        pool.get_mut(d).serve(SimTime::ZERO, 200);
        assert_eq!(pool.get(d).bytes_served(), 300);
        assert_eq!(pool.get(d).requests(), 2);
    }
}

#[cfg(test)]
mod wait_tests {
    use super::*;

    #[test]
    fn waits_are_tracked() {
        let mut pool = ResourcePool::new();
        // 1 MiB/s: each 1 MiB transfer holds the device 1 s.
        let d = pool.register(ResourceSpec::disk("d", 1 << 20, 0));
        pool.get_mut(d).serve(SimTime::ZERO, 1 << 20);
        pool.get_mut(d).serve(SimTime::ZERO, 1 << 20); // waits 1 s
        pool.get_mut(d).serve(SimTime::ZERO, 1 << 20); // waits 2 s
        assert_eq!(pool.get(d).max_wait(), SimDuration::from_secs(2));
        assert_eq!(pool.get(d).mean_wait(), SimDuration::from_secs(1));
    }

    #[test]
    fn no_wait_when_idle() {
        let mut pool = ResourcePool::new();
        let d = pool.register(ResourceSpec::disk("d", 1 << 20, 0));
        pool.get_mut(d).serve(SimTime::ZERO, 1024);
        pool.get_mut(d).serve(SimTime::from_secs(10), 1024);
        assert_eq!(pool.get(d).max_wait(), SimDuration::ZERO);
        assert_eq!(pool.get(d).mean_wait(), SimDuration::ZERO);
    }

    #[test]
    fn reset_clears_wait_stats() {
        let mut pool = ResourcePool::new();
        let d = pool.register(ResourceSpec::disk("d", 1 << 20, 0));
        pool.get_mut(d).serve(SimTime::ZERO, 1 << 20);
        pool.get_mut(d).serve(SimTime::ZERO, 1 << 20);
        pool.reset_all();
        assert_eq!(pool.get(d).max_wait(), SimDuration::ZERO);
        assert_eq!(pool.get(d).mean_wait(), SimDuration::ZERO);
    }
}
