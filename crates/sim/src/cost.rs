//! Cost expressions: how an operation uses cluster resources.
//!
//! A storage operation in the data plane (e.g. a replicated write) is
//! described as a tree: transfer over the client NIC, **then** in parallel
//! for each replica (transfer over the server NIC, **then** a disk write).
//! Executing the tree against a [`ResourcePool`] threads virtual time through
//! the resources, queueing where they are already busy.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::resource::{ResourceId, ResourcePool};
use crate::time::{SimDuration, SimTime};

/// A tree describing resource usage of one logical operation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CostExpr {
    /// No cost; completes immediately.
    Nop,
    /// Move `bytes` through a resource (queues on its bandwidth, pays its
    /// fixed latency).
    Transfer {
        /// The device the bytes move through.
        resource: ResourceId,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// Occupy a resource for a fixed duration (e.g. CPU work of known cost).
    Busy {
        /// The device that is occupied.
        resource: ResourceId,
        /// How long it is occupied, in nanoseconds.
        nanos: u64,
    },
    /// Pure delay not tied to any resource (e.g. a configured think time).
    Delay(
        /// Length of the delay in nanoseconds.
        u64,
    ),
    /// Children run one after another.
    Seq(Vec<CostExpr>),
    /// Children start together; the expression completes when all complete
    /// (fan-out to replicas, EC shards, ...).
    Par(Vec<CostExpr>),
    /// A semantic label on a subtree, for tracing: legs compiled from
    /// `inner` report `label` (labels nest as `outer/inner` paths).
    /// Timing-transparent — execution is exactly that of `inner`.
    Tagged {
        /// The semantic step name, e.g. `"redirect.chunk_read"`.
        label: Arc<str>,
        /// The subtree being labelled.
        inner: Box<CostExpr>,
    },
}

impl CostExpr {
    /// A transfer of `bytes` through `resource`.
    pub fn transfer(resource: ResourceId, bytes: u64) -> Self {
        CostExpr::Transfer { resource, bytes }
    }

    /// Occupies `resource` for `duration`.
    pub fn busy(resource: ResourceId, duration: SimDuration) -> Self {
        CostExpr::Busy {
            resource,
            nanos: duration.as_nanos(),
        }
    }

    /// A pure delay of `duration`.
    pub fn delay(duration: SimDuration) -> Self {
        CostExpr::Delay(duration.as_nanos())
    }

    /// Sequential composition, flattening nested sequences and dropping
    /// no-ops.
    pub fn seq(parts: impl IntoIterator<Item = CostExpr>) -> Self {
        let mut out = Vec::new();
        for p in parts {
            match p {
                CostExpr::Nop => {}
                CostExpr::Seq(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => CostExpr::Nop,
            1 => out.into_iter().next().expect("len checked"),
            _ => CostExpr::Seq(out),
        }
    }

    /// Parallel composition (join-all), dropping no-ops.
    pub fn par(parts: impl IntoIterator<Item = CostExpr>) -> Self {
        let mut out: Vec<CostExpr> = parts
            .into_iter()
            .filter(|p| !matches!(p, CostExpr::Nop))
            .collect();
        match out.len() {
            0 => CostExpr::Nop,
            1 => out.pop().expect("len checked"),
            _ => CostExpr::Par(out),
        }
    }

    /// Appends `next` to run after `self`.
    pub fn then(self, next: CostExpr) -> Self {
        CostExpr::seq([self, next])
    }

    /// Labels `inner` with a semantic step name for tracing. No-op
    /// subtrees stay no-ops (a label on nothing carries no information),
    /// so cost-tree simplification is unaffected.
    pub fn tagged(label: impl Into<Arc<str>>, inner: CostExpr) -> Self {
        if inner.is_nop() {
            return CostExpr::Nop;
        }
        CostExpr::Tagged {
            label: label.into(),
            inner: Box::new(inner),
        }
    }

    /// Total bytes transferred anywhere in the tree (for accounting).
    pub fn total_bytes(&self) -> u64 {
        match self {
            CostExpr::Transfer { bytes, .. } => *bytes,
            CostExpr::Seq(parts) | CostExpr::Par(parts) => {
                parts.iter().map(CostExpr::total_bytes).sum()
            }
            CostExpr::Tagged { inner, .. } => inner.total_bytes(),
            _ => 0,
        }
    }

    /// Whether the tree performs no work at all.
    pub fn is_nop(&self) -> bool {
        match self {
            CostExpr::Nop => true,
            CostExpr::Seq(parts) | CostExpr::Par(parts) => parts.iter().all(CostExpr::is_nop),
            CostExpr::Tagged { inner, .. } => inner.is_nop(),
            _ => false,
        }
    }
}

#[allow(clippy::derivable_impls)] // keep explicit: Nop-as-default is a semantic choice
impl Default for CostExpr {
    fn default() -> Self {
        CostExpr::Nop
    }
}

impl ResourcePool {
    /// Executes `cost` starting at `now`; returns the virtual completion
    /// time. Resource queue state advances as a side effect, so concurrent
    /// operations executed in issue order contend realistically.
    ///
    /// # Panics
    ///
    /// Panics if the expression references a resource not in this pool.
    pub fn execute(&mut self, now: SimTime, cost: &CostExpr) -> SimTime {
        match cost {
            CostExpr::Nop => now,
            CostExpr::Transfer { resource, bytes } => self.get_mut(*resource).serve(now, *bytes),
            CostExpr::Busy { resource, nanos } => self
                .get_mut(*resource)
                .serve_for(now, SimDuration::from_nanos(*nanos)),
            CostExpr::Delay(nanos) => now + SimDuration::from_nanos(*nanos),
            CostExpr::Seq(parts) => {
                let mut t = now;
                for p in parts {
                    t = self.execute(t, p);
                }
                t
            }
            CostExpr::Par(parts) => parts
                .iter()
                .map(|p| self.execute(now, p))
                .fold(now, SimTime::max),
            CostExpr::Tagged { inner, .. } => self.execute(now, inner),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::ResourceSpec;

    fn pool_with_two() -> (ResourcePool, ResourceId, ResourceId) {
        let mut pool = ResourcePool::new();
        // 1 MiB/s, no latency: 1 MiB takes exactly 1 s.
        let a = pool.register(ResourceSpec::disk("a", 1 << 20, 0));
        let b = pool.register(ResourceSpec::disk("b", 1 << 20, 0));
        (pool, a, b)
    }

    #[test]
    fn seq_adds_durations() {
        let (mut pool, a, b) = pool_with_two();
        let cost = CostExpr::seq([
            CostExpr::transfer(a, 1 << 20),
            CostExpr::transfer(b, 1 << 20),
        ]);
        assert_eq!(pool.execute(SimTime::ZERO, &cost), SimTime::from_secs(2));
    }

    #[test]
    fn par_takes_max_across_resources() {
        let (mut pool, a, b) = pool_with_two();
        let cost = CostExpr::par([
            CostExpr::transfer(a, 1 << 20),
            CostExpr::transfer(b, 2 << 20),
        ]);
        assert_eq!(pool.execute(SimTime::ZERO, &cost), SimTime::from_secs(2));
    }

    #[test]
    fn par_on_same_resource_serializes() {
        let (mut pool, a, _) = pool_with_two();
        let cost = CostExpr::par([
            CostExpr::transfer(a, 1 << 20),
            CostExpr::transfer(a, 1 << 20),
        ]);
        // Same device: bandwidth serializes even "parallel" branches.
        assert_eq!(pool.execute(SimTime::ZERO, &cost), SimTime::from_secs(2));
    }

    #[test]
    fn delay_is_resource_free() {
        let mut pool = ResourcePool::new();
        let cost = CostExpr::delay(SimDuration::from_millis(5));
        assert_eq!(
            pool.execute(SimTime::ZERO, &cost),
            SimTime::from_nanos(5_000_000)
        );
    }

    #[test]
    fn seq_flattens_and_drops_nops() {
        let (_, a, b) = pool_with_two();
        let inner = CostExpr::seq([CostExpr::transfer(a, 1), CostExpr::Nop]);
        let outer = CostExpr::seq([inner, CostExpr::transfer(b, 2)]);
        match outer {
            CostExpr::Seq(parts) => assert_eq!(parts.len(), 2),
            other => panic!("expected flattened Seq, got {other:?}"),
        }
    }

    #[test]
    fn single_child_collapses() {
        let (_, a, _) = pool_with_two();
        let c = CostExpr::par([CostExpr::transfer(a, 1)]);
        assert!(matches!(c, CostExpr::Transfer { .. }));
        assert!(CostExpr::seq([]).is_nop());
    }

    #[test]
    fn total_bytes_counts_all_transfers() {
        let (_, a, b) = pool_with_two();
        let cost = CostExpr::seq([
            CostExpr::transfer(a, 100),
            CostExpr::par([CostExpr::transfer(b, 50), CostExpr::transfer(a, 25)]),
        ]);
        assert_eq!(cost.total_bytes(), 175);
    }

    #[test]
    fn tagged_is_timing_transparent() {
        let (mut pool, a, b) = pool_with_two();
        let plain = CostExpr::seq([
            CostExpr::transfer(a, 1 << 20),
            CostExpr::transfer(b, 1 << 20),
        ]);
        let tagged = CostExpr::tagged(
            "op",
            CostExpr::seq([
                CostExpr::tagged("first", CostExpr::transfer(a, 1 << 20)),
                CostExpr::transfer(b, 1 << 20),
            ]),
        );
        let mut reference = pool.clone();
        assert_eq!(
            pool.execute(SimTime::ZERO, &tagged),
            reference.execute(SimTime::ZERO, &plain)
        );
        assert_eq!(tagged.total_bytes(), plain.total_bytes());
        assert!(!tagged.is_nop());
    }

    #[test]
    fn tagging_a_nop_stays_nop() {
        assert!(CostExpr::tagged("x", CostExpr::Nop).is_nop());
        assert!(matches!(
            CostExpr::tagged("x", CostExpr::seq([])),
            CostExpr::Nop
        ));
    }

    #[test]
    fn interleaved_operations_contend() {
        let (mut pool, a, _) = pool_with_two();
        // Foreground op at t=0 and background op at t=0 on the same disk:
        // whichever executes second queues behind the first.
        let fg = pool.execute(SimTime::ZERO, &CostExpr::transfer(a, 1 << 20));
        let bg = pool.execute(SimTime::ZERO, &CostExpr::transfer(a, 1 << 20));
        assert_eq!(fg, SimTime::from_secs(1));
        assert_eq!(bg, SimTime::from_secs(2));
    }
}
