//! Discrete-event virtual-time kernel for the global-dedup storage simulator.
//!
//! The data plane of the reproduced system (`dedup-store`, `dedup-core`)
//! moves real bytes through real data structures; this crate supplies the
//! *timing plane*: a virtual clock, FIFO queueing [`Resource`]s (disks, NICs,
//! CPUs) with fixed latency and bandwidth, and [`CostExpr`] trees describing
//! how an operation uses those resources sequentially and in parallel.
//!
//! Executing a cost expression against a [`ResourcePool`] yields a virtual
//! completion time; concurrent operations contend for the same resources, so
//! queueing effects (e.g. background deduplication interfering with
//! foreground I/O) fall out naturally.
//!
//! # Example
//!
//! ```
//! use dedup_sim::{ResourcePool, ResourceSpec, CostExpr, SimTime};
//!
//! let mut pool = ResourcePool::new();
//! let disk = pool.register(ResourceSpec::disk("osd.0", 500 * 1024 * 1024, 80_000));
//! let cost = CostExpr::transfer(disk, 4096);
//! let done = pool.execute(SimTime::ZERO, &cost);
//! assert!(done > SimTime::ZERO);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod driver;
mod flow;
mod fsync;
mod resource;
mod series;
mod stats;
mod time;
mod trace;

pub use cost::CostExpr;
pub use driver::{ClosedLoopDriver, EventQueue, ScheduledEvent};
pub use flow::{FlowCompletion, FlowEngine};
pub use fsync::{FsyncRecord, FsyncSequencer, FSYNC_JOURNAL_CAP};
pub use resource::{Resource, ResourceId, ResourcePool, ResourceSpec};
pub use series::{TimeBin, TimeSeries};
pub use stats::{LatencyStats, SlidingWindowCounter};
pub use time::{SimDuration, SimTime};
pub use trace::{LegKind, LegRecord, TraceSink};
