//! Workload drivers: a generic event queue and a closed-loop driver.
//!
//! The closed-loop driver models FIO-style load generation: `streams`
//! independent in-flight contexts (threads × iodepth), each issuing its next
//! operation as soon as the previous one completes.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::stats::LatencyStats;
use crate::time::SimTime;

/// An event scheduled for a virtual time, carrying an opaque payload.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<T> {
    /// When the event fires.
    pub at: SimTime,
    /// Tie-break sequence (FIFO among equal times).
    pub seq: u64,
    /// Caller payload.
    pub payload: T,
}

impl<T> PartialEq for ScheduledEvent<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for ScheduledEvent<T> {}
impl<T> PartialOrd for ScheduledEvent<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for ScheduledEvent<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap behaviour inside BinaryHeap.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Min-heap of [`ScheduledEvent`]s ordered by time, then insertion order.
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<ScheduledEvent<T>>,
    next_seq: u64,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `at`.
    pub fn push(&mut self, at: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { at, seq, payload });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<ScheduledEvent<T>> {
        self.heap.pop()
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Outcome of a closed-loop run.
#[derive(Debug, Clone)]
pub struct ClosedLoopReport {
    /// Per-operation completion latencies.
    pub latency: LatencyStats,
    /// Number of operations completed.
    pub ops: u64,
    /// Virtual time at which the last operation completed.
    pub finished_at: SimTime,
}

/// Drives `streams` concurrent closed loops until `total_ops` operations
/// complete. See the module docs for the model.
#[derive(Debug, Clone, Copy)]
pub struct ClosedLoopDriver {
    /// Number of concurrent in-flight contexts.
    pub streams: usize,
    /// Total operations to issue across all streams.
    pub total_ops: u64,
}

impl ClosedLoopDriver {
    /// Creates a driver with `streams` in-flight contexts issuing
    /// `total_ops` operations overall.
    ///
    /// # Panics
    ///
    /// Panics if `streams` is zero.
    pub fn new(streams: usize, total_ops: u64) -> Self {
        assert!(streams > 0, "need at least one stream");
        ClosedLoopDriver { streams, total_ops }
    }

    /// Runs the loop. `issue(stream, op_index, now)` performs the operation
    /// against the caller's cluster state and returns its virtual completion
    /// time (usually from [`crate::ResourcePool::execute`]).
    pub fn run(&self, mut issue: impl FnMut(usize, u64, SimTime) -> SimTime) -> ClosedLoopReport {
        let mut queue: EventQueue<usize> = EventQueue::new();
        for s in 0..self.streams {
            queue.push(SimTime::ZERO, s);
        }
        let mut latency = LatencyStats::new();
        let mut issued = 0u64;
        let mut completed = 0u64;
        let mut finished_at = SimTime::ZERO;
        while let Some(ev) = queue.pop() {
            if issued >= self.total_ops {
                continue;
            }
            let op_index = issued;
            issued += 1;
            let done = issue(ev.payload, op_index, ev.at);
            latency.record(done.saturating_since(ev.at));
            finished_at = finished_at.max(done);
            completed += 1;
            queue.push(done, ev.payload);
        }
        ClosedLoopReport {
            latency,
            ops: completed,
            finished_at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn queue_orders_by_time_then_fifo() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(2), "late");
        q.push(SimTime::from_secs(1), "early-a");
        q.push(SimTime::from_secs(1), "early-b");
        assert_eq!(q.pop().map(|e| e.payload), Some("early-a"));
        assert_eq!(q.pop().map(|e| e.payload), Some("early-b"));
        assert_eq!(q.pop().map(|e| e.payload), Some("late"));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_sees_min() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), ());
        q.push(SimTime::from_secs(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(3)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn closed_loop_serializes_per_stream() {
        // One stream, each op takes 1ms: ops complete back-to-back.
        let report =
            ClosedLoopDriver::new(1, 10).run(|_s, _i, now| now + SimDuration::from_millis(1));
        assert_eq!(report.ops, 10);
        assert_eq!(report.finished_at, SimTime::from_nanos(10_000_000));
        assert_eq!(report.latency.mean(), SimDuration::from_millis(1));
    }

    #[test]
    fn closed_loop_streams_overlap() {
        // Four streams with a fixed 1ms cost and no shared resource finish
        // 12 ops in 3ms of virtual time.
        let report =
            ClosedLoopDriver::new(4, 12).run(|_s, _i, now| now + SimDuration::from_millis(1));
        assert_eq!(report.finished_at, SimTime::from_nanos(3_000_000));
    }

    #[test]
    fn closed_loop_respects_total_ops() {
        let mut calls = 0;
        let report = ClosedLoopDriver::new(3, 7).run(|_, _, now| {
            calls += 1;
            now + SimDuration::from_micros(10)
        });
        assert_eq!(calls, 7);
        assert_eq!(report.ops, 7);
    }

    #[test]
    #[should_panic(expected = "at least one stream")]
    fn zero_streams_rejected() {
        let _ = ClosedLoopDriver::new(0, 1);
    }
}
