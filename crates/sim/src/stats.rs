//! Latency statistics and sliding-window rate observation.

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// Accumulates request latencies and reports mean/percentiles.
///
/// Samples are kept exactly (experiments here are small enough); percentile
/// queries sort lazily.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LatencyStats {
    samples: Vec<u64>,
    sum: u128,
}

impl LatencyStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: SimDuration) {
        self.samples.push(latency.as_nanos());
        self.sum += latency.as_nanos() as u128;
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean latency, or zero if empty.
    pub fn mean(&self) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos((self.sum / self.samples.len() as u128) as u64)
    }

    /// The `p`-th percentile (0.0–100.0) by nearest-rank, or zero if empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> SimDuration {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
        SimDuration::from_nanos(sorted[rank])
    }

    /// Maximum latency, or zero if empty.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.samples.iter().copied().max().unwrap_or(0))
    }

    /// Minimum latency, or zero if empty.
    pub fn min(&self) -> SimDuration {
        SimDuration::from_nanos(self.samples.iter().copied().min().unwrap_or(0))
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.samples.extend_from_slice(&other.samples);
        self.sum += other.sum;
    }
}

/// Counts events in a trailing virtual-time window; used by deduplication
/// rate control to observe foreground IOPS.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlidingWindowCounter {
    window: SimDuration,
    events: std::collections::VecDeque<u64>,
}

impl SlidingWindowCounter {
    /// Creates a counter with the given trailing window.
    pub fn new(window: SimDuration) -> Self {
        SlidingWindowCounter {
            window,
            events: std::collections::VecDeque::new(),
        }
    }

    /// Records an event at `at`.
    pub fn record(&mut self, at: SimTime) {
        self.events.push_back(at.as_nanos());
        self.evict(at);
    }

    /// Events inside the window ending at `now`.
    pub fn count(&mut self, now: SimTime) -> u64 {
        self.evict(now);
        self.events.len() as u64
    }

    /// Event rate per second over the window ending at `now`.
    pub fn rate_per_sec(&mut self, now: SimTime) -> f64 {
        let n = self.count(now);
        n as f64 / self.window.as_secs_f64()
    }

    fn evict(&mut self, now: SimTime) {
        let cutoff = now.as_nanos().saturating_sub(self.window.as_nanos());
        while let Some(&front) = self.events.front() {
            if front < cutoff {
                self.events.pop_front();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_extremes() {
        let mut s = LatencyStats::new();
        for ms in [1u64, 2, 3] {
            s.record(SimDuration::from_millis(ms));
        }
        assert_eq!(s.mean(), SimDuration::from_millis(2));
        assert_eq!(s.min(), SimDuration::from_millis(1));
        assert_eq!(s.max(), SimDuration::from_millis(3));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = LatencyStats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), SimDuration::ZERO);
        assert_eq!(s.percentile(99.0), SimDuration::ZERO);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut s = LatencyStats::new();
        for us in 1..=100u64 {
            s.record(SimDuration::from_micros(us));
        }
        assert_eq!(s.percentile(0.0), SimDuration::from_micros(1));
        assert_eq!(s.percentile(100.0), SimDuration::from_micros(100));
        let p50 = s.percentile(50.0);
        assert!(p50 >= SimDuration::from_micros(50) && p50 <= SimDuration::from_micros(51));
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_rejects_bad_input() {
        LatencyStats::new().percentile(101.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyStats::new();
        a.record(SimDuration::from_millis(1));
        let mut b = LatencyStats::new();
        b.record(SimDuration::from_millis(3));
        a.merge(&b);
        assert_eq!(a.mean(), SimDuration::from_millis(2));
    }

    #[test]
    fn window_counter_evicts_old_events() {
        let mut c = SlidingWindowCounter::new(SimDuration::from_secs(1));
        c.record(SimTime::from_nanos(0));
        c.record(SimTime::from_millis_helper(700));
        assert_eq!(c.count(SimTime::from_millis_helper(900)), 2);
        assert_eq!(c.count(SimTime::from_millis_helper(1600)), 1);
        assert_eq!(c.count(SimTime::from_secs(10)), 0);
    }

    #[test]
    fn window_rate() {
        let mut c = SlidingWindowCounter::new(SimDuration::from_secs(1));
        for i in 0..100 {
            c.record(SimTime::from_nanos(i * 10_000_000));
        }
        let r = c.rate_per_sec(SimTime::from_secs(1));
        assert!(r > 90.0 && r <= 100.0, "rate {r}");
    }

    impl SimTime {
        fn from_millis_helper(ms: u64) -> SimTime {
            SimTime::from_nanos(ms * 1_000_000)
        }
    }
}
