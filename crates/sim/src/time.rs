//! Virtual time newtypes.
//!
//! All simulator time is counted in integer nanoseconds so that event
//! ordering is exact and runs are reproducible.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point in virtual time, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time point from nanoseconds since simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates a time point from whole seconds since simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the later of two time points.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; simulated clocks never run
    /// backwards, so this indicates a driver bug.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "time went backwards: {earlier:?} > {self:?}"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Duration elapsed since `earlier`, or zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        SimDuration((secs * 1e9).round() as u64)
    }

    /// The duration in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in fractional milliseconds (for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration in fractional seconds (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Time to move `bytes` at `bytes_per_sec`; zero when rate is unlimited
    /// (`bytes_per_sec == 0`).
    pub fn for_transfer(bytes: u64, bytes_per_sec: u64) -> SimDuration {
        if bytes_per_sec == 0 {
            return SimDuration::ZERO;
        }
        // nanos = bytes * 1e9 / rate, in u128 to avoid overflow.
        let nanos = (bytes as u128 * 1_000_000_000u128) / bytes_per_sec as u128;
        SimDuration(nanos as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0 / 1_000)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_secs(2) + SimDuration::from_millis(500);
        assert_eq!(t.as_nanos(), 2_500_000_000);
        assert_eq!(
            t.since(SimTime::from_secs(2)),
            SimDuration::from_millis(500)
        );
    }

    #[test]
    fn transfer_duration_matches_rate() {
        // 1 MiB at 1 MiB/s is exactly one second.
        let d = SimDuration::for_transfer(1 << 20, 1 << 20);
        assert_eq!(d, SimDuration::from_secs(1));
    }

    #[test]
    fn transfer_with_unlimited_rate_is_free() {
        assert_eq!(SimDuration::for_transfer(123, 0), SimDuration::ZERO);
    }

    #[test]
    fn transfer_does_not_overflow_large_values() {
        // 100 TiB at 1 B/s would overflow u64 nanoseconds math done naively.
        let d = SimDuration::for_transfer(100 << 40, 1_000_000_000);
        assert!(d.as_secs_f64() > 0.0);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn since_panics_when_reversed() {
        let _ = SimTime::from_secs(1).since(SimTime::from_secs(2));
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(
            SimTime::from_secs(1).saturating_since(SimTime::from_secs(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_micros(10).to_string(), "10us");
        assert_eq!(SimDuration::from_millis(3).to_string(), "3.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=3).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(6));
    }
}
