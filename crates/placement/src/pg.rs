//! Pools and placement groups.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::hash::xxh64;

/// Identifier of a storage pool (e.g. the metadata pool or the chunk pool).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PoolId(pub u32);

impl fmt::Display for PoolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pool.{}", self.0)
    }
}

/// Identifier of one placement group within a pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PgId {
    /// Owning pool.
    pub pool: PoolId,
    /// PG index in `[0, pg_count)`.
    pub index: u32,
}

impl fmt::Display for PgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.pg{}", self.pool, self.index)
    }
}

/// Object-name → placement-group mapping for one pool.
///
/// An object name is hashed (stable xxHash64) and folded modulo the pool's
/// PG count, exactly the first of the paper's two hash levels: the second
/// level ([`crate::ClusterMap::acting_set`]) maps the PG onto devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PgMap {
    pool: PoolId,
    pg_count: u32,
}

impl PgMap {
    /// Creates the mapping for `pool` with `pg_count` placement groups.
    ///
    /// # Panics
    ///
    /// Panics if `pg_count` is zero.
    pub fn new(pool: PoolId, pg_count: u32) -> Self {
        assert!(pg_count > 0, "pg_count must be positive");
        PgMap { pool, pg_count }
    }

    /// The owning pool.
    pub fn pool(&self) -> PoolId {
        self.pool
    }

    /// Number of placement groups.
    pub fn pg_count(&self) -> u32 {
        self.pg_count
    }

    /// Maps an object name to its placement group.
    pub fn pg_of(&self, object_name: &[u8]) -> PgId {
        let h = xxh64(object_name, self.pool.0 as u64);
        PgId {
            pool: self.pool,
            index: (h % self.pg_count as u64) as u32,
        }
    }

    /// The PG with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= pg_count`.
    pub fn pg(&self, index: u32) -> PgId {
        assert!(index < self.pg_count, "pg index {index} out of range");
        PgId {
            pool: self.pool,
            index,
        }
    }

    /// Iterates over every PG in the pool.
    pub fn iter(&self) -> impl Iterator<Item = PgId> + '_ {
        (0..self.pg_count).map(move |index| PgId {
            pool: self.pool,
            index,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pg_of_is_stable_and_in_range() {
        let pgs = PgMap::new(PoolId(2), 64);
        for i in 0..1000 {
            let name = format!("obj-{i}");
            let pg = pgs.pg_of(name.as_bytes());
            assert_eq!(pg, pgs.pg_of(name.as_bytes()));
            assert!(pg.index < 64);
            assert_eq!(pg.pool, PoolId(2));
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let pgs = PgMap::new(PoolId(1), 32);
        let mut counts = [0u32; 32];
        for i in 0..32_000 {
            counts[pgs.pg_of(format!("o{i}").as_bytes()).index as usize] += 1;
        }
        for &c in &counts {
            assert!((600..=1400).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn pools_hash_independently() {
        let a = PgMap::new(PoolId(1), 64);
        let b = PgMap::new(PoolId(2), 64);
        let diff = (0..100)
            .filter(|i| {
                a.pg_of(format!("x{i}").as_bytes()).index
                    != b.pg_of(format!("x{i}").as_bytes()).index
            })
            .count();
        assert!(diff > 50, "pool seed not mixed: only {diff} differ");
    }

    #[test]
    fn iter_covers_all_pgs() {
        let pgs = PgMap::new(PoolId(0), 16);
        let all: Vec<_> = pgs.iter().collect();
        assert_eq!(all.len(), 16);
        assert_eq!(all[15].index, 15);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pg_index_bounds_checked() {
        PgMap::new(PoolId(0), 4).pg(4);
    }
}
