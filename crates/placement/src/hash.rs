//! Stable 64-bit hashing (xxHash64) used for all placement decisions.
//!
//! Placement must be identical across processes and runs, so we cannot use
//! `std::hash` (seeded per-process). xxHash64 is implemented here from the
//! reference specification and pinned by known-answer tests.

const PRIME1: u64 = 0x9E3779B185EBCA87;
const PRIME2: u64 = 0xC2B2AE3D27D4EB4F;
const PRIME3: u64 = 0x165667B19E3779F9;
const PRIME4: u64 = 0x85EBCA77C2B2AE63;
const PRIME5: u64 = 0x27D4EB2F165667C5;

#[inline]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(PRIME2))
        .rotate_left(31)
        .wrapping_mul(PRIME1)
}

#[inline]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val))
        .wrapping_mul(PRIME1)
        .wrapping_add(PRIME4)
}

#[inline]
fn read_u64(data: &[u8], i: usize) -> u64 {
    u64::from_le_bytes(data[i..i + 8].try_into().expect("8 bytes"))
}

#[inline]
fn read_u32(data: &[u8], i: usize) -> u32 {
    u32::from_le_bytes(data[i..i + 4].try_into().expect("4 bytes"))
}

/// Computes xxHash64 of `data` with the given `seed`.
///
/// # Example
///
/// ```
/// assert_eq!(dedup_placement::hash::xxh64(b"", 0), 0xEF46DB3751D8E999);
/// ```
pub fn xxh64(data: &[u8], seed: u64) -> u64 {
    let len = data.len();
    let mut h: u64;
    let mut i = 0usize;

    if len >= 32 {
        let mut v1 = seed.wrapping_add(PRIME1).wrapping_add(PRIME2);
        let mut v2 = seed.wrapping_add(PRIME2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(PRIME1);
        while i + 32 <= len {
            v1 = round(v1, read_u64(data, i));
            v2 = round(v2, read_u64(data, i + 8));
            v3 = round(v3, read_u64(data, i + 16));
            v4 = round(v4, read_u64(data, i + 24));
            i += 32;
        }
        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        h = merge_round(h, v4);
    } else {
        h = seed.wrapping_add(PRIME5);
    }

    h = h.wrapping_add(len as u64);

    while i + 8 <= len {
        h ^= round(0, read_u64(data, i));
        h = h.rotate_left(27).wrapping_mul(PRIME1).wrapping_add(PRIME4);
        i += 8;
    }
    if i + 4 <= len {
        h ^= (read_u32(data, i) as u64).wrapping_mul(PRIME1);
        h = h.rotate_left(23).wrapping_mul(PRIME2).wrapping_add(PRIME3);
        i += 4;
    }
    while i < len {
        h ^= (data[i] as u64).wrapping_mul(PRIME5);
        h = h.rotate_left(11).wrapping_mul(PRIME1);
        i += 1;
    }

    h ^= h >> 33;
    h = h.wrapping_mul(PRIME2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME3);
    h ^= h >> 32;
    h
}

/// Hashes a sequence of 64-bit words (cheap composite keys such as
/// `(pg, osd, attempt)`), avalanche-mixing each word.
pub fn hash_words(words: &[u64], seed: u64) -> u64 {
    let mut h = seed.wrapping_add(PRIME5);
    for &w in words {
        h ^= round(0, w);
        h = h.rotate_left(27).wrapping_mul(PRIME1).wrapping_add(PRIME4);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(PRIME2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME3);
    h ^= h >> 32;
    h
}

/// Maps a 64-bit hash to a uniform float in the open interval `(0, 1]`.
///
/// Used by straw2 draws, which take `ln` of the result; the interval
/// excludes zero so the logarithm is always finite.
pub fn to_unit_interval(h: u64) -> f64 {
    // 53 significant bits, then shift into (0, 1].
    (((h >> 11) + 1) as f64) / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    // Known-answer vectors from the reference xxHash implementation.
    #[test]
    fn xxh64_known_vectors() {
        assert_eq!(xxh64(b"", 0), 0xEF46DB3751D8E999);
        assert_eq!(xxh64(b"a", 0), 0xD24EC4F1A98C6E5B);
        assert_eq!(xxh64(b"abc", 0), 0x44BC2CF5AD770999);
    }

    #[test]
    fn seed_changes_output() {
        assert_ne!(xxh64(b"abc", 0), xxh64(b"abc", 1));
    }

    #[test]
    fn long_input_uses_lane_path() {
        // > 32 bytes exercises the v1..v4 accumulator path; check stability
        // against itself and sensitivity to single-byte change.
        let data = [7u8; 100];
        let mut tweaked = data;
        tweaked[50] ^= 1;
        assert_eq!(xxh64(&data, 42), xxh64(&data, 42));
        assert_ne!(xxh64(&data, 42), xxh64(&tweaked, 42));
    }

    #[test]
    fn all_tail_paths_are_distinct() {
        // Lengths exercising the 8-byte, 4-byte, and 1-byte tail loops.
        let data = b"0123456789abcdef0123456789abcdef0123456";
        let mut seen = std::collections::HashSet::new();
        for len in 0..data.len() {
            assert!(seen.insert(xxh64(&data[..len], 0)), "collision at {len}");
        }
    }

    #[test]
    fn hash_words_mixes_positionally() {
        assert_ne!(hash_words(&[1, 2], 0), hash_words(&[2, 1], 0));
        assert_ne!(hash_words(&[1], 0), hash_words(&[1, 0], 0));
    }

    #[test]
    fn unit_interval_bounds() {
        assert!(to_unit_interval(0) > 0.0);
        assert!(to_unit_interval(u64::MAX) <= 1.0);
        for i in 0..1000u64 {
            let u = to_unit_interval(hash_words(&[i], 9));
            assert!(u > 0.0 && u <= 1.0);
        }
    }

    #[test]
    fn unit_interval_is_roughly_uniform() {
        let n = 100_000u64;
        let mean: f64 = (0..n)
            .map(|i| to_unit_interval(hash_words(&[i], 1)))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
