//! Cluster maps: devices, failure-domain nodes, and acting-set selection.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::hash::hash_words;
use crate::pg::PgId;
use crate::straw::straw2_draw;

/// Identifier of an object storage device (OSD).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OsdId(pub u32);

impl fmt::Display for OsdId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "osd.{}", self.0)
    }
}

/// Identifier of a failure-domain node (host) containing OSDs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node.{}", self.0)
    }
}

/// Identifier of a rack (a failure domain above nodes: shared power/switch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RackId(pub u32);

impl fmt::Display for RackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rack.{}", self.0)
    }
}

/// Static + liveness description of one OSD.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OsdInfo {
    /// This OSD's id (its index in the map).
    pub id: OsdId,
    /// The failure-domain node hosting it.
    pub node: NodeId,
    /// Relative capacity weight; zero removes it from placement.
    pub weight: f64,
    /// Whether the OSD is currently serving I/O.
    pub up: bool,
}

/// Which topology level replicas must not share.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureDomain {
    /// Replicas may share a node but not a device.
    Osd,
    /// Replicas must land on distinct nodes (falls back to distinct OSDs if
    /// there are fewer nodes than replicas).
    Node,
    /// Replicas must land on distinct racks (falls back to distinct nodes,
    /// then distinct OSDs, when the topology is too small).
    Rack,
}

/// How many devices to select for a placement group and how to spread them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PlacementRule {
    /// Acting-set size: replica count, or `k + m` for erasure coding.
    pub replicas: usize,
    /// Spread constraint.
    pub failure_domain: FailureDomain,
}

impl PlacementRule {
    /// Rule placing `replicas` copies on distinct nodes.
    pub fn spread_nodes(replicas: usize) -> Self {
        PlacementRule {
            replicas,
            failure_domain: FailureDomain::Node,
        }
    }
}

/// The versioned device map every participant shares.
///
/// This plays the role of Ceph's OSDMap: placement is a pure function of
/// `(map, pg, rule)`, so any client computes the same acting set with no
/// metadata server.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ClusterMap {
    osds: Vec<OsdInfo>,
    nodes: u32,
    /// Rack of each node, indexed by `NodeId`.
    node_racks: Vec<RackId>,
    racks: u32,
    epoch: u64,
}

impl ClusterMap {
    /// Creates an empty map at epoch 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a new (empty) rack.
    pub fn add_rack(&mut self) -> RackId {
        let id = RackId(self.racks);
        self.racks += 1;
        self.epoch += 1;
        id
    }

    /// Adds a new (empty) node in its own implicit rack.
    pub fn add_node(&mut self) -> NodeId {
        let rack = self.add_rack();
        self.add_node_in_rack(rack)
    }

    /// Adds a new (empty) node under an existing rack.
    ///
    /// # Panics
    ///
    /// Panics if `rack` does not exist.
    pub fn add_node_in_rack(&mut self, rack: RackId) -> NodeId {
        assert!(rack.0 < self.racks, "unknown rack {rack}");
        let id = NodeId(self.nodes);
        self.nodes += 1;
        self.node_racks.push(rack);
        self.epoch += 1;
        id
    }

    /// The rack hosting a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not exist.
    pub fn rack_of(&self, node: NodeId) -> RackId {
        self.node_racks[node.0 as usize]
    }

    /// Number of registered racks.
    pub fn rack_count(&self) -> usize {
        self.racks as usize
    }

    /// Adds an OSD with `weight` under `node` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not exist or `weight` is negative/not finite.
    pub fn add_osd(&mut self, node: NodeId, weight: f64) -> OsdId {
        assert!(node.0 < self.nodes, "unknown node {node}");
        assert!(weight.is_finite() && weight >= 0.0, "bad weight {weight}");
        let id = OsdId(u32::try_from(self.osds.len()).expect("too many OSDs"));
        self.osds.push(OsdInfo {
            id,
            node,
            weight,
            up: true,
        });
        self.epoch += 1;
        id
    }

    /// Marks an OSD up or down. Down OSDs are excluded from acting sets, so
    /// placement recomputation after a failure drives recovery.
    ///
    /// # Panics
    ///
    /// Panics if `osd` does not exist.
    pub fn set_up(&mut self, osd: OsdId, up: bool) {
        self.osds[osd.0 as usize].up = up;
        self.epoch += 1;
    }

    /// Changes an OSD's weight (zero removes it from placement).
    ///
    /// # Panics
    ///
    /// Panics if `osd` does not exist or `weight` is negative/not finite.
    pub fn set_weight(&mut self, osd: OsdId, weight: f64) {
        assert!(weight.is_finite() && weight >= 0.0, "bad weight {weight}");
        self.osds[osd.0 as usize].weight = weight;
        self.epoch += 1;
    }

    /// Map version; bumped by every mutation.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// All OSDs, including down and zero-weight ones.
    pub fn osds(&self) -> &[OsdInfo] {
        &self.osds
    }

    /// Looks up one OSD.
    ///
    /// # Panics
    ///
    /// Panics if `osd` does not exist.
    pub fn osd(&self, osd: OsdId) -> &OsdInfo {
        &self.osds[osd.0 as usize]
    }

    /// Number of registered OSDs (including down ones).
    pub fn osd_count(&self) -> usize {
        self.osds.len()
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.nodes as usize
    }

    /// Ids of OSDs currently up with positive weight.
    pub fn up_osds(&self) -> Vec<OsdId> {
        self.osds
            .iter()
            .filter(|o| o.up && o.weight > 0.0)
            .map(|o| o.id)
            .collect()
    }

    /// Computes the acting set for `pg` under `rule`: the ordered devices
    /// holding the PG's data (index 0 is the primary).
    ///
    /// Selection is straw2 over all eligible OSDs with greedy
    /// failure-domain distinctness; if the domain constraint cannot fill the
    /// set (fewer nodes than replicas) it relaxes to distinct OSDs. Fewer
    /// than `rule.replicas` devices are returned only when the cluster
    /// itself is too small or too degraded.
    pub fn acting_set(&self, pg: PgId, rule: &PlacementRule) -> Vec<OsdId> {
        let key = pg.seed();
        let mut draws: Vec<(OsdId, NodeId, f64)> = self
            .osds
            .iter()
            .filter(|o| o.up && o.weight > 0.0)
            .map(|o| (o.id, o.node, straw2_draw(key, o.id.0 as u64, o.weight)))
            .collect();
        draws.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));

        let mut chosen: Vec<OsdId> = Vec::with_capacity(rule.replicas);
        // Greedy distinctness at the requested level, degrading one level
        // at a time when the topology cannot satisfy it.
        if rule.failure_domain == FailureDomain::Rack {
            let mut used_racks: Vec<RackId> = Vec::new();
            for &(osd, node, _) in &draws {
                if chosen.len() == rule.replicas {
                    break;
                }
                let rack = self.rack_of(node);
                if !used_racks.contains(&rack) {
                    used_racks.push(rack);
                    chosen.push(osd);
                }
            }
        }
        if chosen.len() < rule.replicas
            && matches!(
                rule.failure_domain,
                FailureDomain::Node | FailureDomain::Rack
            )
        {
            let mut used_nodes: Vec<NodeId> = chosen.iter().map(|&o| self.osd(o).node).collect();
            for &(osd, node, _) in &draws {
                if chosen.len() == rule.replicas {
                    break;
                }
                if !used_nodes.contains(&node) {
                    used_nodes.push(node);
                    chosen.push(osd);
                }
            }
        }
        if chosen.len() < rule.replicas {
            for &(osd, _, _) in &draws {
                if chosen.len() == rule.replicas {
                    break;
                }
                if !chosen.contains(&osd) {
                    chosen.push(osd);
                }
            }
        }
        chosen
    }

    /// The primary OSD for `pg`, if any device is eligible.
    pub fn primary(&self, pg: PgId, rule: &PlacementRule) -> Option<OsdId> {
        self.acting_set(pg, rule).first().copied()
    }
}

/// A placement-group movement implied by a map change.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PgMove {
    /// The placement group that changed devices.
    pub pg: PgId,
    /// Acting set under the old map.
    pub from: Vec<OsdId>,
    /// Acting set under the new map.
    pub to: Vec<OsdId>,
}

/// Computes which of `pgs` change acting sets between two maps — the work a
/// rebalance or recovery must perform.
pub fn moved_pgs(
    old: &ClusterMap,
    new: &ClusterMap,
    pgs: impl IntoIterator<Item = PgId>,
    rule: &PlacementRule,
) -> Vec<PgMove> {
    pgs.into_iter()
        .filter_map(|pg| {
            let from = old.acting_set(pg, rule);
            let to = new.acting_set(pg, rule);
            (from != to).then_some(PgMove { pg, from, to })
        })
        .collect()
}

impl PgId {
    /// Deterministic straw2 key for this PG.
    pub fn seed(&self) -> u64 {
        hash_words(&[self.pool.0 as u64, self.index as u64], 0x9e3779b9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pg::{PgMap, PoolId};

    fn four_by_four() -> ClusterMap {
        let mut map = ClusterMap::new();
        for _ in 0..4 {
            let n = map.add_node();
            for _ in 0..4 {
                map.add_osd(n, 1.0);
            }
        }
        map
    }

    fn rule3() -> PlacementRule {
        PlacementRule::spread_nodes(3)
    }

    #[test]
    fn acting_set_is_deterministic_and_distinct() {
        let map = four_by_four();
        let pgs = PgMap::new(PoolId(1), 64);
        for i in 0..64 {
            let pg = pgs.pg(i);
            let a = map.acting_set(pg, &rule3());
            let b = map.acting_set(pg, &rule3());
            assert_eq!(a, b);
            assert_eq!(a.len(), 3);
            let mut dedup = a.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "devices must be distinct");
        }
    }

    #[test]
    fn node_failure_domain_spreads_across_nodes() {
        let map = four_by_four();
        let pgs = PgMap::new(PoolId(1), 128);
        for i in 0..128 {
            let acting = map.acting_set(pgs.pg(i), &rule3());
            let mut nodes: Vec<_> = acting.iter().map(|&o| map.osd(o).node).collect();
            nodes.sort();
            nodes.dedup();
            assert_eq!(nodes.len(), 3, "replicas share a node");
        }
    }

    #[test]
    fn falls_back_when_nodes_insufficient() {
        let mut map = ClusterMap::new();
        let n = map.add_node();
        for _ in 0..4 {
            map.add_osd(n, 1.0);
        }
        let pg = PgMap::new(PoolId(1), 8).pg(3);
        let acting = map.acting_set(pg, &rule3());
        assert_eq!(acting.len(), 3, "single node still fills the set");
    }

    #[test]
    fn down_osd_is_replaced_and_restored() {
        let mut map = four_by_four();
        let pgs = PgMap::new(PoolId(1), 256);
        let rule = rule3();
        let before: Vec<_> = (0..256).map(|i| map.acting_set(pgs.pg(i), &rule)).collect();
        let victim = before[0][0];
        map.set_up(victim, false);
        for (i, old) in before.iter().enumerate() {
            let new = map.acting_set(pgs.pg(i as u32), &rule);
            assert!(!new.contains(&victim), "down OSD still mapped");
            if !old.contains(&victim) {
                // PGs not touching the failed OSD keep their devices
                // (ordering may differ only if the victim was involved).
                assert_eq!(old, &new, "unrelated PG moved");
            }
        }
        map.set_up(victim, true);
        for (i, old) in before.iter().enumerate() {
            assert_eq!(old, &map.acting_set(pgs.pg(i as u32), &rule));
        }
    }

    #[test]
    fn placement_balances_by_weight() {
        let mut map = ClusterMap::new();
        // Two nodes: one with double-weight OSDs.
        let a = map.add_node();
        let b = map.add_node();
        let heavy = map.add_osd(a, 2.0);
        let light = map.add_osd(b, 1.0);
        let rule = PlacementRule {
            replicas: 1,
            failure_domain: FailureDomain::Osd,
        };
        let pgs = PgMap::new(PoolId(9), 4096);
        let mut heavy_hits = 0u32;
        for i in 0..4096 {
            match map.acting_set(pgs.pg(i), &rule)[0] {
                o if o == heavy => heavy_hits += 1,
                o => assert_eq!(o, light),
            }
        }
        let frac = heavy_hits as f64 / 4096.0;
        assert!((frac - 2.0 / 3.0).abs() < 0.03, "heavy fraction {frac}");
    }

    #[test]
    fn moved_pgs_limited_to_failed_device() {
        let mut before = four_by_four();
        let pgs = PgMap::new(PoolId(1), 512);
        let rule = rule3();
        let mut after = before.clone();
        let victim = OsdId(5);
        after.set_up(victim, false);
        let moves = moved_pgs(&before, &after, (0..512).map(|i| pgs.pg(i)), &rule);
        assert!(!moves.is_empty());
        for m in &moves {
            assert!(
                m.from.contains(&victim),
                "PG {:?} moved without involving the failed OSD",
                m.pg
            );
        }
        // Sanity: roughly 3/16 of PGs touch any one OSD.
        let frac = moves.len() as f64 / 512.0;
        assert!(frac < 0.35, "too much movement: {frac}");
        // Restoring the OSD undoes every move.
        before.set_up(victim, false);
        before.set_up(victim, true);
        after.set_up(victim, true);
        assert!(moved_pgs(&before, &after, (0..512).map(|i| pgs.pg(i)), &rule).is_empty());
    }

    #[test]
    fn rack_domain_spreads_across_racks() {
        // 2 racks x 2 nodes x 2 OSDs.
        let mut map = ClusterMap::new();
        for _ in 0..2 {
            let rack = map.add_rack();
            for _ in 0..2 {
                let n = map.add_node_in_rack(rack);
                for _ in 0..2 {
                    map.add_osd(n, 1.0);
                }
            }
        }
        let rule = PlacementRule {
            replicas: 2,
            failure_domain: FailureDomain::Rack,
        };
        let pgs = PgMap::new(PoolId(3), 64);
        for i in 0..64 {
            let acting = map.acting_set(pgs.pg(i), &rule);
            assert_eq!(acting.len(), 2);
            let racks: Vec<_> = acting
                .iter()
                .map(|&o| map.rack_of(map.osd(o).node))
                .collect();
            assert_ne!(racks[0], racks[1], "replicas share rack on pg {i}");
        }
    }

    #[test]
    fn rack_domain_degrades_to_nodes_then_osds() {
        // One rack, two nodes, 3 replicas requested: distinct racks are
        // impossible; fall back to distinct nodes, then distinct OSDs.
        let mut map = ClusterMap::new();
        let rack = map.add_rack();
        for _ in 0..2 {
            let n = map.add_node_in_rack(rack);
            for _ in 0..2 {
                map.add_osd(n, 1.0);
            }
        }
        let rule = PlacementRule {
            replicas: 3,
            failure_domain: FailureDomain::Rack,
        };
        let pg = PgMap::new(PoolId(3), 8).pg(1);
        let acting = map.acting_set(pg, &rule);
        assert_eq!(acting.len(), 3, "set filled despite tiny topology");
        let nodes: std::collections::HashSet<_> = acting.iter().map(|&o| map.osd(o).node).collect();
        assert_eq!(nodes.len(), 2, "both nodes used before doubling up");
    }

    #[test]
    fn implicit_racks_keep_node_semantics() {
        // add_node() without racks: Rack domain behaves like Node domain.
        let map = {
            let mut m = ClusterMap::new();
            for _ in 0..4 {
                let n = m.add_node();
                for _ in 0..2 {
                    m.add_osd(n, 1.0);
                }
            }
            m
        };
        let rack_rule = PlacementRule {
            replicas: 3,
            failure_domain: FailureDomain::Rack,
        };
        let node_rule = PlacementRule::spread_nodes(3);
        let pgs = PgMap::new(PoolId(5), 32);
        for i in 0..32 {
            assert_eq!(
                map.acting_set(pgs.pg(i), &rack_rule),
                map.acting_set(pgs.pg(i), &node_rule)
            );
        }
    }

    #[test]
    fn epoch_bumps_on_mutation() {
        let mut map = ClusterMap::new();
        let e0 = map.epoch();
        let n = map.add_node();
        let o = map.add_osd(n, 1.0);
        map.set_weight(o, 2.0);
        map.set_up(o, false);
        // add_node = rack + node (2 bumps), add_osd, set_weight, set_up.
        assert_eq!(map.epoch(), e0 + 5);
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn add_osd_requires_existing_node() {
        ClusterMap::new().add_osd(NodeId(3), 1.0);
    }

    #[test]
    fn up_osds_reflect_state() {
        let mut map = four_by_four();
        assert_eq!(map.up_osds().len(), 16);
        map.set_up(OsdId(0), false);
        map.set_weight(OsdId(1), 0.0);
        assert_eq!(map.up_osds().len(), 14);
    }
}

#[cfg(test)]
mod placement_proptests {
    use super::*;
    use crate::pg::{PgMap, PoolId};
    use proptest::prelude::*;

    fn map_with(osds_per_node: &[u8]) -> ClusterMap {
        let mut map = ClusterMap::new();
        for &count in osds_per_node {
            let n = map.add_node();
            for _ in 0..count.clamp(1, 8) {
                map.add_osd(n, 1.0);
            }
        }
        map
    }

    proptest! {
        /// Acting sets are deterministic, duplicate-free, and as large as
        /// the topology allows, for arbitrary topologies.
        #[test]
        fn acting_sets_well_formed(
            nodes in proptest::collection::vec(1u8..5, 1..6),
            replicas in 1usize..5,
            pg_index in 0u32..64,
        ) {
            let map = map_with(&nodes);
            let rule = PlacementRule {
                replicas,
                failure_domain: FailureDomain::Node,
            };
            let pg = PgMap::new(PoolId(1), 64).pg(pg_index);
            let a = map.acting_set(pg, &rule);
            prop_assert_eq!(a.clone(), map.acting_set(pg, &rule));
            let mut uniq = a.clone();
            uniq.sort();
            uniq.dedup();
            prop_assert_eq!(uniq.len(), a.len(), "duplicate device");
            prop_assert_eq!(a.len(), replicas.min(map.osd_count()));
        }

        /// Downing one OSD only moves PGs that used it — the rendezvous
        /// minimal-movement property, for arbitrary topologies.
        #[test]
        fn failure_moves_only_affected_pgs(
            nodes in proptest::collection::vec(2u8..5, 2..5),
            victim_seed in any::<u64>(),
        ) {
            let mut map = map_with(&nodes);
            let rule = PlacementRule::spread_nodes(2);
            let pgs = PgMap::new(PoolId(1), 64);
            let before: Vec<_> = pgs.iter().map(|pg| map.acting_set(pg, &rule)).collect();
            let victim = OsdId((victim_seed % map.osd_count() as u64) as u32);
            map.set_up(victim, false);
            for (pg, old) in pgs.iter().zip(&before) {
                let new = map.acting_set(pg, &rule);
                if !old.contains(&victim) {
                    prop_assert_eq!(old, &new, "unrelated PG moved");
                }
                prop_assert!(!new.contains(&victim));
            }
        }
    }
}
