//! Straw2 draws (weighted rendezvous hashing), as used by Ceph CRUSH.
//!
//! Each candidate receives an independent pseudo-random straw whose length is
//! `ln(u) / weight` with `u` uniform in `(0, 1]`; the candidate with the
//! *largest* (least negative) straw wins. The winner follows a weighted
//! multinomial distribution, and — crucially for rebalancing — changing one
//! candidate's weight only moves data to or from that candidate.

use crate::hash::{hash_words, to_unit_interval};

/// Computes the straw2 draw for a candidate.
///
/// `key` identifies what is being placed (e.g. a placement-group seed),
/// `item` identifies the candidate (device or node id mixed with an attempt
/// counter), and `weight` is the candidate's relative capacity. A weight of
/// zero (or below) yields `f64::NEG_INFINITY`, i.e. never selected unless
/// every candidate has zero weight.
pub fn straw2_draw(key: u64, item: u64, weight: f64) -> f64 {
    if weight <= 0.0 {
        return f64::NEG_INFINITY;
    }
    let u = to_unit_interval(hash_words(&[key, item], 0x5ca1ab1e));
    u.ln() / weight
}

/// Selects the index of the winning candidate among `(item, weight)` pairs,
/// or `None` if the slice is empty or all weights are non-positive.
pub fn straw2_select(key: u64, candidates: &[(u64, f64)]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (idx, &(item, weight)) in candidates.iter().enumerate() {
        let draw = straw2_draw(key, item, weight);
        if draw == f64::NEG_INFINITY {
            continue;
        }
        match best {
            Some((_, b)) if b >= draw => {}
            _ => best = Some((idx, draw)),
        }
    }
    best.map(|(idx, _)| idx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_weight_never_wins() {
        let candidates = [(1u64, 0.0), (2, 1.0)];
        for key in 0..200u64 {
            assert_eq!(straw2_select(key, &candidates), Some(1));
        }
    }

    #[test]
    fn empty_or_all_zero_is_none() {
        assert_eq!(straw2_select(7, &[]), None);
        assert_eq!(straw2_select(7, &[(1, 0.0), (2, -1.0)]), None);
    }

    #[test]
    fn selection_tracks_weights() {
        // 2:1 weights should win roughly 2:1 over many keys.
        let candidates = [(10u64, 2.0), (20, 1.0)];
        let mut wins = [0u32; 2];
        let trials = 30_000;
        for key in 0..trials {
            wins[straw2_select(key, &candidates).expect("non-empty")] += 1;
        }
        let frac = wins[0] as f64 / trials as f64;
        assert!((frac - 2.0 / 3.0).abs() < 0.02, "weighted fraction {frac}");
    }

    #[test]
    fn removing_loser_does_not_move_winner() {
        // Rendezvous property: drop a non-winning candidate and the winner
        // among the rest is unchanged.
        let full = [(1u64, 1.0), (2, 1.0), (3, 1.0)];
        for key in 0..500u64 {
            let win = straw2_select(key, &full).expect("non-empty");
            let dropped = (win + 1) % 3; // drop some loser
            let reduced: Vec<_> = full
                .iter()
                .copied()
                .enumerate()
                .filter(|&(i, _)| i != dropped)
                .map(|(_, c)| c)
                .collect();
            let new_win = straw2_select(key, &reduced).expect("non-empty");
            assert_eq!(reduced[new_win].0, full[win].0);
        }
    }

    #[test]
    fn draws_are_deterministic() {
        assert_eq!(straw2_draw(1, 2, 1.5), straw2_draw(1, 2, 1.5));
        assert_ne!(straw2_draw(1, 2, 1.0), straw2_draw(1, 3, 1.0));
    }
}
