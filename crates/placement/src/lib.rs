//! Decentralized, CRUSH-style data placement for a shared-nothing scale-out
//! store.
//!
//! The paper's *double hashing* idea relies on one property of the underlying
//! storage system: **any object name deterministically maps to a set of
//! storage devices through a hash algorithm**, with no metadata server. This
//! crate supplies that algorithm:
//!
//! * [`hash::xxh64`] — a stable 64-bit content/name hash (xxHash64).
//! * [`straw2_draw`] — weighted straw2 draws (as in Ceph's CRUSH), giving each
//!   candidate device an independent pseudo-random "straw" scaled by weight;
//!   the longest straw wins. Selection is stable under device add/remove:
//!   only data mapped to the affected device moves.
//! * [`ClusterMap`] — devices (OSDs) grouped into failure-domain nodes, with
//!   weights and up/down state, versioned by an epoch.
//! * [`PgMap`] — object → placement group → acting set of OSDs.
//!
//! # Example
//!
//! ```
//! use dedup_placement::{ClusterMap, PlacementRule, FailureDomain, PgMap, PoolId};
//!
//! let mut map = ClusterMap::new();
//! for node in 0..4 {
//!     let n = map.add_node();
//!     for _ in 0..4 {
//!         map.add_osd(n, 1.0);
//!     }
//! }
//! let rule = PlacementRule { replicas: 3, failure_domain: FailureDomain::Node };
//! let pgs = PgMap::new(PoolId(1), 128);
//! let pg = pgs.pg_of(b"my-object");
//! let acting = map.acting_set(pg, &rule);
//! assert_eq!(acting.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hash;

mod map;
mod pg;
mod straw;

pub use map::{
    moved_pgs, ClusterMap, FailureDomain, NodeId, OsdId, OsdInfo, PgMove, PlacementRule, RackId,
};
pub use pg::{PgId, PgMap, PoolId};
pub use straw::{straw2_draw, straw2_select};
