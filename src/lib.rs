//! # global-dedup
//!
//! A from-scratch Rust reproduction of **"Design of Global Data
//! Deduplication for a Scale-out Distributed Storage System"**
//! (Oh et al., ICDCS 2018): cluster-wide deduplication for a
//! shared-nothing, hash-placed object store, with no fingerprint index, no
//! external metadata service, and no special cases in the store's
//! availability machinery.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `dedup-core` | the paper's contribution: [`core::DedupStore`], double hashing, chunk maps, refcounts, rate control, hitset cache manager |
//! | [`store`] | `dedup-store` | the scale-out substrate: [`store::Cluster`], pools, replication, erasure coding, transactions, recovery, scrub |
//! | [`placement`] | `dedup-placement` | CRUSH-style placement: straw2, placement groups, cluster maps |
//! | [`erasure`] | `dedup-erasure` | Reed–Solomon over GF(2⁸) |
//! | [`chunk`] | `dedup-chunk` | fixed-size and content-defined chunking |
//! | [`fingerprint`] | `dedup-fingerprint` | 256-bit content fingerprints (chunk object IDs) |
//! | [`compress`] | `dedup-compress` | LZ-style at-rest compression |
//! | [`obs`] | `dedup-obs` | metrics registry, per-op tracing, resource probes |
//! | [`sim`] | `dedup-sim` | virtual-time performance plane |
//! | [`workloads`] | `dedup-workloads` | FIO / SPEC-SFS / cloud / VM-image / backup generators |
//! | [`block`] | (this crate) | RBD-like block device striped over objects, for either backend |
//!
//! # Quick start
//!
//! ```
//! use global_dedup::core::{DedupConfig, DedupStore};
//! use global_dedup::store::{ClientId, ClusterBuilder, ObjectName};
//! use global_dedup::sim::SimTime;
//!
//! # fn main() -> Result<(), global_dedup::core::DedupError> {
//! // A 4-node x 4-OSD cluster, like the paper's testbed.
//! let cluster = ClusterBuilder::new().nodes(4).osds_per_node(4).build();
//! let mut store = DedupStore::with_default_pools(cluster, DedupConfig::default());
//!
//! // Write two objects with identical content...
//! let data = vec![7u8; 128 * 1024];
//! store.write(ClientId(0), &ObjectName::new("a"), 0, &data, SimTime::ZERO)?;
//! store.write(ClientId(0), &ObjectName::new("b"), 0, &data, SimTime::ZERO)?;
//!
//! // ...deduplicate in the background...
//! store.flush_all(SimTime::from_secs(60))?;
//!
//! // ...and the cluster stores the content once: the two objects (and
//! // their four identical 32 KiB chunks each) collapse to a single chunk.
//! let report = store.space_report()?;
//! assert_eq!(report.chunk_objects, 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;

pub use dedup_chunk as chunk;
pub use dedup_compress as compress;
pub use dedup_core as core;
pub use dedup_erasure as erasure;
pub use dedup_fingerprint as fingerprint;
pub use dedup_obs as obs;
pub use dedup_placement as placement;
pub use dedup_sim as sim;
pub use dedup_store as store;
pub use dedup_workloads as workloads;
