//! A block-device client striped over objects — the paper's actual I/O
//! path (its evaluation drives Ceph through KRBD, §6.1).
//!
//! A [`BlockDevice`] presents a flat, fixed-size byte range and maps it
//! onto `size / object_size` backing objects named
//! `<device>.<object index>`, exactly like an RBD image. It works over
//! either backend:
//!
//! * a raw cluster pool (the "Original" system), or
//! * a [`dedup_core::DedupStore`] (the "Proposed" system),
//!
//! through the [`BlockBackend`] trait.
//!
//! # Example
//!
//! ```
//! use global_dedup::block::BlockDevice;
//! use global_dedup::core::{DedupConfig, DedupStore};
//! use global_dedup::store::{ClientId, ClusterBuilder};
//! use global_dedup::sim::SimTime;
//!
//! # fn main() -> Result<(), global_dedup::block::BlockError> {
//! let cluster = ClusterBuilder::new().build();
//! let store = DedupStore::with_default_pools(cluster, DedupConfig::default());
//! let mut dev = BlockDevice::new(store, "vol0", 8 << 20, 1 << 20, ClientId(0));
//!
//! // A write spanning two backing objects.
//! let data = vec![42u8; 128 * 1024];
//! dev.write((1 << 20) - 64 * 1024, &data, SimTime::ZERO)?;
//! let (read, _cost) = dev.read((1 << 20) - 64 * 1024, data.len() as u64, SimTime::ZERO)?;
//! assert_eq!(read, data);
//! # Ok(())
//! # }
//! ```

use std::error::Error;
use std::fmt;

use dedup_core::{DedupError, DedupStore};
use dedup_sim::{CostExpr, SimTime};
use dedup_store::{ClientId, Cluster, IoCtx, ObjectName, StoreError};

/// Errors from the block layer.
#[derive(Debug)]
pub enum BlockError {
    /// Access past the end of the device.
    OutOfRange {
        /// Requested offset.
        offset: u64,
        /// Requested length.
        len: u64,
        /// Device size.
        device_size: u64,
    },
    /// The backing store failed.
    Store(StoreError),
    /// The dedup layer failed.
    Dedup(DedupError),
}

impl fmt::Display for BlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockError::OutOfRange {
                offset,
                len,
                device_size,
            } => write!(
                f,
                "access [{offset}, {offset}+{len}) past device size {device_size}"
            ),
            BlockError::Store(e) => write!(f, "store: {e}"),
            BlockError::Dedup(e) => write!(f, "dedup: {e}"),
        }
    }
}

impl Error for BlockError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BlockError::Store(e) => Some(e),
            BlockError::Dedup(e) => Some(e),
            BlockError::OutOfRange { .. } => None,
        }
    }
}

impl From<StoreError> for BlockError {
    fn from(e: StoreError) -> Self {
        BlockError::Store(e)
    }
}

impl From<DedupError> for BlockError {
    fn from(e: DedupError) -> Self {
        BlockError::Dedup(e)
    }
}

/// An object store a [`BlockDevice`] can stripe over.
pub trait BlockBackend {
    /// Writes `data` at `offset` of the named backing object.
    ///
    /// # Errors
    ///
    /// Propagates backend failures.
    fn write_object(
        &mut self,
        client: ClientId,
        name: &ObjectName,
        offset: u64,
        data: &[u8],
        now: SimTime,
    ) -> Result<CostExpr, BlockError>;

    /// Reads `len` bytes at `offset` of the named backing object. Reads of
    /// never-written ranges return zeros (block devices are zero-filled).
    ///
    /// # Errors
    ///
    /// Propagates backend failures.
    fn read_object(
        &mut self,
        client: ClientId,
        name: &ObjectName,
        offset: u64,
        len: u64,
        now: SimTime,
    ) -> Result<(Vec<u8>, CostExpr), BlockError>;
}

/// Raw-pool backend: `(cluster, pool ioctx)` — the "Original" system.
impl BlockBackend for (Cluster, IoCtx) {
    fn write_object(
        &mut self,
        client: ClientId,
        name: &ObjectName,
        offset: u64,
        data: &[u8],
        now: SimTime,
    ) -> Result<CostExpr, BlockError> {
        let _ = now;
        let ctx = self.1.clone().with_client(client);
        Ok(self.0.write_at(&ctx, name, offset, data.to_vec())?.cost)
    }

    fn read_object(
        &mut self,
        client: ClientId,
        name: &ObjectName,
        offset: u64,
        len: u64,
        now: SimTime,
    ) -> Result<(Vec<u8>, CostExpr), BlockError> {
        let _ = now;
        let ctx = self.1.clone().with_client(client);
        let size = self.0.stat(self.1.pool, name)?.unwrap_or(0);
        if offset >= size {
            return Ok((vec![0u8; len as usize], CostExpr::Nop));
        }
        let readable = len.min(size - offset);
        let t = self.0.read_at(&ctx, name, offset, readable)?;
        let mut out = t.value.to_vec();
        out.resize(len as usize, 0);
        Ok((out, t.cost))
    }
}

/// Dedup backend — the "Proposed" system.
impl BlockBackend for DedupStore {
    fn write_object(
        &mut self,
        client: ClientId,
        name: &ObjectName,
        offset: u64,
        data: &[u8],
        now: SimTime,
    ) -> Result<CostExpr, BlockError> {
        Ok(self.write(client, name, offset, data, now)?.cost)
    }

    fn read_object(
        &mut self,
        client: ClientId,
        name: &ObjectName,
        offset: u64,
        len: u64,
        now: SimTime,
    ) -> Result<(Vec<u8>, CostExpr), BlockError> {
        let size = self
            .cluster()
            .stat(self.metadata_pool(), name)?
            .unwrap_or(0);
        if offset >= size {
            return Ok((vec![0u8; len as usize], CostExpr::Nop));
        }
        let readable = len.min(size - offset);
        let t = self.read(client, name, offset, readable, now)?;
        let mut out = t.value.to_vec();
        out.resize(len as usize, 0);
        Ok((out, t.cost))
    }
}

/// A fixed-size virtual block device striped over backing objects.
pub struct BlockDevice<B> {
    backend: B,
    name: String,
    size: u64,
    object_size: u32,
    client: ClientId,
}

impl<B: BlockBackend> BlockDevice<B> {
    /// Creates a device of `size` bytes striped over `object_size` objects.
    ///
    /// # Panics
    ///
    /// Panics if `size` or `object_size` is zero.
    pub fn new(
        backend: B,
        name: impl Into<String>,
        size: u64,
        object_size: u32,
        client: ClientId,
    ) -> Self {
        assert!(size > 0, "device size must be positive");
        assert!(object_size > 0, "object size must be positive");
        BlockDevice {
            backend,
            name: name.into(),
            size,
            object_size,
            client,
        }
    }

    /// Device size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Striping unit (backing object size).
    pub fn object_size(&self) -> u32 {
        self.object_size
    }

    /// The wrapped backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The wrapped backend, mutably.
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Consumes the device, returning the backend.
    pub fn into_backend(self) -> B {
        self.backend
    }

    fn check(&self, offset: u64, len: u64) -> Result<(), BlockError> {
        if offset + len > self.size {
            return Err(BlockError::OutOfRange {
                offset,
                len,
                device_size: self.size,
            });
        }
        Ok(())
    }

    fn object_name(&self, index: u64) -> ObjectName {
        ObjectName::new(format!("{}.{:08x}", self.name, index))
    }

    /// Splits `[offset, offset + len)` into per-object `(index, intra
    /// offset, length)` pieces.
    fn pieces(&self, offset: u64, len: u64) -> Vec<(u64, u64, u64)> {
        let os = self.object_size as u64;
        let mut out = Vec::new();
        let mut cur = offset;
        let end = offset + len;
        while cur < end {
            let idx = cur / os;
            let intra = cur % os;
            let take = (os - intra).min(end - cur);
            out.push((idx, intra, take));
            cur += take;
        }
        out
    }

    /// Writes `data` at device `offset`; spans objects transparently.
    /// Per-object writes proceed in parallel (independent placements).
    ///
    /// # Errors
    ///
    /// Fails on out-of-range access or backend errors.
    pub fn write(
        &mut self,
        offset: u64,
        data: &[u8],
        now: SimTime,
    ) -> Result<CostExpr, BlockError> {
        self.check(offset, data.len() as u64)?;
        let mut costs = Vec::new();
        let mut consumed = 0usize;
        for (idx, intra, take) in self.pieces(offset, data.len() as u64) {
            let name = self.object_name(idx);
            let slice = &data[consumed..consumed + take as usize];
            costs.push(
                self.backend
                    .write_object(self.client, &name, intra, slice, now)?,
            );
            consumed += take as usize;
        }
        Ok(CostExpr::par(costs))
    }

    /// Reads `len` bytes at device `offset`; never-written space is zeros.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range access or backend errors.
    pub fn read(
        &mut self,
        offset: u64,
        len: u64,
        now: SimTime,
    ) -> Result<(Vec<u8>, CostExpr), BlockError> {
        self.check(offset, len)?;
        let mut out = Vec::with_capacity(len as usize);
        let mut costs = Vec::new();
        for (idx, intra, take) in self.pieces(offset, len) {
            let name = self.object_name(idx);
            let (bytes, cost) = self
                .backend
                .read_object(self.client, &name, intra, take, now)?;
            out.extend_from_slice(&bytes);
            costs.push(cost);
        }
        Ok((out, CostExpr::par(costs)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dedup_core::{CachePolicy, DedupConfig};
    use dedup_store::{ClusterBuilder, PoolConfig};

    fn raw_device() -> BlockDevice<(Cluster, IoCtx)> {
        let mut cluster = ClusterBuilder::new().build();
        let pool = cluster.create_pool(PoolConfig::replicated("data", 2));
        BlockDevice::new(
            (cluster, IoCtx::new(pool)),
            "vol",
            4 << 20,
            1 << 20,
            ClientId(0),
        )
    }

    fn dedup_device() -> BlockDevice<DedupStore> {
        let cluster = ClusterBuilder::new().build();
        let store = DedupStore::with_default_pools(
            cluster,
            DedupConfig::with_chunk_size(32 * 1024).cache_policy(CachePolicy::EvictAll),
        );
        BlockDevice::new(store, "vol", 4 << 20, 1 << 20, ClientId(0))
    }

    fn patterned(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
                (state >> 33) as u8
            })
            .collect()
    }

    #[test]
    fn pieces_split_at_object_boundaries() {
        let dev = raw_device();
        let pieces = dev.pieces((1 << 20) - 10, 30);
        assert_eq!(pieces, vec![(0, (1 << 20) - 10, 10), (1, 0, 20)]);
        let pieces = dev.pieces(0, 3 << 20);
        assert_eq!(pieces.len(), 3);
    }

    #[test]
    fn spanning_write_read_round_trip_raw() {
        let mut dev = raw_device();
        let data = patterned(256 * 1024, 1);
        let offset = (1 << 20) - 100_000;
        let _ = dev.write(offset, &data, SimTime::ZERO).expect("write");
        let (got, cost) = dev
            .read(offset, data.len() as u64, SimTime::ZERO)
            .expect("read");
        assert_eq!(got, data);
        assert!(!cost.is_nop());
    }

    #[test]
    fn unwritten_space_reads_zero() {
        let mut dev = raw_device();
        let (got, _) = dev.read(2 << 20, 4096, SimTime::ZERO).expect("read");
        assert_eq!(got, vec![0u8; 4096]);
        // Partially written object: tail still zero.
        let _ = dev.write(0, &[7u8; 100], SimTime::ZERO).expect("write");
        let (got, _) = dev.read(0, 200, SimTime::ZERO).expect("read");
        assert_eq!(&got[..100], &[7u8; 100]);
        assert_eq!(&got[100..], &[0u8; 100]);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut dev = raw_device();
        assert!(matches!(
            dev.write((4 << 20) - 10, &[0u8; 20], SimTime::ZERO),
            Err(BlockError::OutOfRange { .. })
        ));
        assert!(matches!(
            dev.read(4 << 20, 1, SimTime::ZERO),
            Err(BlockError::OutOfRange { .. })
        ));
    }

    #[test]
    fn dedup_backend_deduplicates_identical_volumes_regions() {
        let mut dev = dedup_device();
        // The same 128 KiB written at two device offsets in different
        // backing objects.
        let data = patterned(128 * 1024, 3);
        let _ = dev.write(0, &data, SimTime::ZERO).expect("write");
        let _ = dev.write(2 << 20, &data, SimTime::ZERO).expect("write");
        let _ = dev
            .backend_mut()
            .flush_all(SimTime::from_secs(10))
            .expect("flush");
        let report = dev.backend().space_report().expect("report");
        assert_eq!(
            report.chunk_objects,
            (128 * 1024) / (32 * 1024),
            "identical regions share chunks across backing objects"
        );
        let (got, _) = dev
            .read(2 << 20, data.len() as u64, SimTime::from_secs(20))
            .expect("read");
        assert_eq!(got, data);
    }

    #[test]
    fn reference_model_against_flat_buffer() {
        let mut dev = dedup_device();
        let mut model = vec![0u8; 4 << 20];
        let mut seed = 11u64;
        for round in 0..40 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(round);
            let offset = (seed >> 16) % ((4 << 20) - 70_000);
            let len = 1 + (seed >> 40) % 65_536;
            let data = patterned(len as usize, seed);
            let _ = dev
                .write(offset, &data, SimTime::from_secs(round))
                .expect("write");
            model[offset as usize..(offset + len) as usize].copy_from_slice(&data);
            if round % 10 == 9 {
                let _ = dev
                    .backend_mut()
                    .flush_all(SimTime::from_secs(1_000 + round))
                    .expect("flush");
            }
        }
        for check in 0..20 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(check);
            let offset = (seed >> 16) % ((4 << 20) - 70_000);
            let len = 1 + (seed >> 40) % 65_536;
            let (got, _) = dev
                .read(offset, len, SimTime::from_secs(5_000))
                .expect("read");
            assert_eq!(got, model[offset as usize..(offset + len) as usize]);
        }
    }
}
