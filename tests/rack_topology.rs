//! Rack-aware placement end to end: a rack-level failure domain keeps
//! deduplicated data available through the loss of an entire rack.

use global_dedup::core::{CachePolicy, DedupConfig, DedupStore};
use global_dedup::placement::{FailureDomain, OsdId, PgMap, PlacementRule, PoolId, RackId};
use global_dedup::sim::SimTime;
use global_dedup::store::{ClientId, ObjectName, PoolConfig};
use global_dedup::workloads::fio::FioSpec;

/// 3 racks × 2 nodes × 2 OSDs, rack-aware pools.
fn rack_cluster() -> global_dedup::store::Cluster {
    global_dedup::store::ClusterBuilder::new()
        .racks(3)
        .nodes(6)
        .osds_per_node(2)
        .build()
}

/// All OSD ids living in the given rack.
fn osds_in_rack(cluster: &global_dedup::store::Cluster, rack: RackId) -> Vec<OsdId> {
    cluster
        .map()
        .osds()
        .iter()
        .filter(|o| cluster.map().rack_of(o.node) == rack)
        .map(|o| o.id)
        .collect()
}

#[test]
fn rack_rule_places_replicas_in_distinct_racks() {
    let cluster = rack_cluster();
    let rule = PlacementRule {
        replicas: 2,
        failure_domain: FailureDomain::Rack,
    };
    let pgs = PgMap::new(PoolId(42), 128);
    for pg in pgs.iter() {
        let acting = cluster.map().acting_set(pg, &rule);
        assert_eq!(acting.len(), 2);
        let racks: Vec<_> = acting
            .iter()
            .map(|&o| cluster.map().rack_of(cluster.map().osd(o).node))
            .collect();
        assert_ne!(racks[0], racks[1]);
    }
}

#[test]
fn whole_rack_failure_is_survivable_with_rack_domain() {
    let cluster = rack_cluster();
    let mut store = DedupStore::new(
        cluster,
        PoolConfig::replicated("metadata", 2).with_failure_domain(FailureDomain::Rack),
        PoolConfig::replicated("chunks", 2).with_failure_domain(FailureDomain::Rack),
        DedupConfig::with_chunk_size(32 * 1024).cache_policy(CachePolicy::EvictAll),
    );
    let dataset = FioSpec::new(8 << 20, 0.5).dataset();
    for obj in &dataset.objects {
        let _ = store
            .write(
                ClientId(0),
                &ObjectName::new(&*obj.name),
                0,
                &obj.data,
                SimTime::ZERO,
            )
            .expect("write");
    }
    let _ = store.flush_all(SimTime::from_secs(10)).expect("flush");

    // Kill rack 0 entirely (both its nodes, all four OSDs) at once.
    let victims = osds_in_rack(store.cluster(), RackId(0));
    assert_eq!(victims.len(), 4);
    for osd in victims {
        store.cluster_mut().fail_osd(osd);
    }
    let t = store.cluster_mut().recover().expect("recover");
    assert!(
        t.value.lost.is_empty(),
        "rack-domain replication must survive one whole rack: {:?}",
        t.value.lost
    );
    for obj in &dataset.objects {
        let r = store
            .read(
                ClientId(0),
                &ObjectName::new(&*obj.name),
                0,
                obj.data.len() as u64,
                SimTime::from_secs(100),
            )
            .expect("read");
        assert_eq!(r.value, obj.data, "object {}", obj.name);
    }
    assert!(store.verify_references().expect("scrub").is_empty());
}

#[test]
fn node_domain_does_not_survive_rack_loss() {
    // Control: the same failure with only node-level spreading loses data
    // whenever both replicas landed inside the dead rack.
    let cluster = rack_cluster();
    let mut store = DedupStore::new(
        cluster,
        PoolConfig::replicated("metadata", 2).with_failure_domain(FailureDomain::Node),
        PoolConfig::replicated("chunks", 2).with_failure_domain(FailureDomain::Node),
        DedupConfig::with_chunk_size(32 * 1024).cache_policy(CachePolicy::EvictAll),
    );
    let dataset = FioSpec::new(8 << 20, 0.5).dataset();
    for obj in &dataset.objects {
        let _ = store
            .write(
                ClientId(0),
                &ObjectName::new(&*obj.name),
                0,
                &obj.data,
                SimTime::ZERO,
            )
            .expect("write");
    }
    let _ = store.flush_all(SimTime::from_secs(10)).expect("flush");
    for osd in osds_in_rack(store.cluster(), RackId(0)) {
        store.cluster_mut().fail_osd(osd);
    }
    let _ = store.cluster_mut().recover().expect("recover");
    // With node-level domains, both nodes of rack 0 can host both replicas
    // of some objects → the dedup-level scrub finds dangling references.
    let missing = store.verify_references().expect("scrub");
    assert!(
        !missing.is_empty(),
        "node-domain placement should lose some chunks to a rack failure"
    );
}
