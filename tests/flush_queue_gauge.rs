//! Audit of the `engine.flush.queue_depth` gauge: every mutation of the
//! dirty queue — enqueue on write, retire on flush, delete, truncate,
//! hot-skip requeue, rate-denied ticks, crash recovery — must leave the
//! gauge equal to [`DedupStore::dirty_len`].

use global_dedup::core::{CachePolicy, DedupConfig, DedupStore, HitSetConfig, Watermarks};
use global_dedup::sim::SimTime;
use global_dedup::store::{ClientId, ClusterBuilder, ObjectName};

const CS: u32 = 8 * 1024;

fn store_with(config: DedupConfig) -> DedupStore {
    let cluster = ClusterBuilder::new().nodes(4).osds_per_node(2).build();
    DedupStore::with_default_pools(cluster, config)
}

fn gauge(s: &DedupStore) -> i64 {
    s.registry().gauge("engine.flush.queue_depth").get()
}

/// The invariant under audit.
fn assert_gauge_synced(s: &DedupStore, context: &str) {
    assert_eq!(
        gauge(s),
        s.dirty_len() as i64,
        "queue-depth gauge out of sync after {context}"
    );
}

fn t(secs: u64) -> SimTime {
    SimTime::from_secs(secs)
}

fn fill(s: &mut DedupStore, name: &str, seed: u8, now: SimTime) {
    let data = vec![seed; 2 * CS as usize];
    let _ = s
        .write(ClientId(0), &ObjectName::new(name), 0, &data, now)
        .expect("write");
}

#[test]
fn gauge_tracks_enqueue_flush_and_redirty() {
    let mut s = store_with(DedupConfig::with_chunk_size(CS).cache_policy(CachePolicy::EvictAll));
    assert_eq!(gauge(&s), 0);
    fill(&mut s, "a", 1, t(0));
    assert_eq!(gauge(&s), 1);
    assert_gauge_synced(&s, "first write");
    fill(&mut s, "b", 2, t(0));
    assert_eq!(gauge(&s), 2);
    // Re-dirtying a queued object must not double-count.
    fill(&mut s, "a", 3, t(0));
    assert_eq!(gauge(&s), 2);
    assert_gauge_synced(&s, "re-dirty");

    let _ = s.flush_next(t(100)).expect("flush");
    assert_eq!(gauge(&s), 1);
    assert_gauge_synced(&s, "flush_next");
    let _ = s.flush_all(t(200)).expect("flush all");
    assert_eq!(gauge(&s), 0);
    assert_gauge_synced(&s, "flush_all");
}

#[test]
fn gauge_tracks_delete_of_queued_object() {
    let mut s = store_with(DedupConfig::with_chunk_size(CS).cache_policy(CachePolicy::EvictAll));
    fill(&mut s, "doomed", 1, t(0));
    fill(&mut s, "kept", 2, t(0));
    assert_eq!(gauge(&s), 2);
    let _ = s
        .delete(ClientId(0), &ObjectName::new("doomed"))
        .expect("delete");
    assert_eq!(gauge(&s), 1);
    assert_gauge_synced(&s, "delete of dirty object");
    // Deleting a never-dirty name is a queue no-op; the gauge must not
    // drift negative.
    let _ = s.delete(ClientId(0), &ObjectName::new("kept"));
    assert_eq!(gauge(&s), 0);
    assert_gauge_synced(&s, "delete of last dirty object");
}

#[test]
fn gauge_survives_truncate_then_clean_retirement() {
    let mut s = store_with(DedupConfig::with_chunk_size(CS).cache_policy(CachePolicy::EvictAll));
    fill(&mut s, "shrunk", 1, t(0));
    assert_eq!(gauge(&s), 1);
    // Truncate to zero removes every chunk entry but leaves the object
    // queued; the gauge must still match.
    let _ = s
        .truncate(ClientId(0), &ObjectName::new("shrunk"), 0, t(1))
        .expect("truncate");
    assert_gauge_synced(&s, "truncate to zero");
    // The next tick finds no dirty chunks and retires the queue entry.
    let _ = s.dedup_tick(t(100)).expect("tick");
    assert_eq!(gauge(&s), 0);
    assert_gauge_synced(&s, "clean retirement");
}

#[test]
fn gauge_unchanged_by_hot_skip_requeue_and_rate_denial() {
    let mut s = store_with(
        DedupConfig::with_chunk_size(CS)
            .cache_policy(CachePolicy::HotnessAware)
            .watermarks(Watermarks {
                low_iops: 0.5,
                high_iops: 10_000.0,
                mid_ratio: 1_000_000,
                high_ratio: 1_000_000,
            }),
    );
    // Hammer one object across distinct hitset intervals so it reads as
    // hot.
    let hs = HitSetConfig::default();
    let rounds = (hs.hit_count + 2) as u64;
    for i in 0..rounds {
        fill(&mut s, "hot", i as u8, t(i * hs.interval_secs));
    }
    let now = t((rounds - 1) * hs.interval_secs);
    assert_eq!(gauge(&s), 1);
    // Rate-denied tick: foreground IOPS sit above the low watermark and
    // the mid-ratio budget is nowhere near met, so the tick is denied.
    let denials_before = s.stats().rate_denials;
    let r = s.dedup_tick(now).expect("tick");
    assert!(r.is_none(), "tick should be throttled");
    assert!(s.stats().rate_denials > denials_before);
    assert_eq!(gauge(&s), 1);
    assert_gauge_synced(&s, "rate-denied tick");
    // Hot-skip requeue (bypassing rate control): the object stays queued,
    // moved to the back; depth is unchanged and in sync.
    let rep = s
        .flush_object(&ObjectName::new("hot"), now)
        .expect("flush attempt");
    assert!(rep.value.skipped_hot, "object should be hot");
    assert_eq!(s.dirty_len(), 1);
    assert_eq!(gauge(&s), 1);
    assert_gauge_synced(&s, "hot-skip requeue");
    // Once cool, it flushes and the gauge returns to zero.
    let _ = s.flush_all(t(10_000)).expect("flush all");
    assert_eq!(gauge(&s), 0);
    assert_gauge_synced(&s, "post-cooldown flush");
}

#[test]
fn gauge_matches_recovery_rebuild() {
    let mut s = store_with(DedupConfig::with_chunk_size(CS).cache_policy(CachePolicy::EvictAll));
    for i in 0..5u8 {
        fill(&mut s, &format!("o{i}"), i + 1, t(0));
    }
    assert_eq!(gauge(&s), 5);
    // Crash-restart: the rebuilt queue and the gauge agree.
    let found = s.recover_dirty_queue().expect("recover");
    assert_eq!(found, 5);
    assert_eq!(gauge(&s), 5);
    assert_gauge_synced(&s, "recovery with dirty objects");
    let _ = s.flush_all(t(100)).expect("flush");
    let found = s.recover_dirty_queue().expect("recover again");
    assert_eq!(found, 0);
    assert_eq!(gauge(&s), 0);
    assert_gauge_synced(&s, "recovery with clean store");
}

#[test]
fn staged_batches_update_pipeline_metrics() {
    let mut s = store_with(
        DedupConfig::with_chunk_size(CS)
            .cache_policy(CachePolicy::EvictAll)
            .flush_batch_size(4),
    );
    for i in 0..4u8 {
        fill(&mut s, &format!("o{i}"), i + 1, t(0));
    }
    let _ = s.dedup_tick(t(100)).expect("tick");
    assert_eq!(
        s.registry().gauge("engine.flush.batch_size").get(),
        4,
        "batched tick staged all four objects"
    );
    assert!(
        s.registry().histogram("engine.flush.stage_wall_ns").count() > 0,
        "stage histogram recorded"
    );
    assert!(
        s.registry()
            .histogram("engine.flush.commit_wall_ns")
            .count()
            > 0,
        "commit histogram recorded"
    );
    assert_gauge_synced(&s, "batched tick");
}
