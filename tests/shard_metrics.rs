//! Audit of the sharded data plane's contention instruments: every
//! foreground op (write, read, truncate, delete) must increment exactly
//! one `service.shard.ops{shard=i}` counter — the one [`shard_index`]
//! routes its object to — and record exactly one sample in the
//! `service.shard.lock_wait_ns` histogram. The labelled series must also
//! appear in registry snapshots, which is what the metrics sidecar
//! samples.

use global_dedup::core::{shard_index, CachePolicy, DedupConfig, DedupStore};
use global_dedup::obs::SnapshotValue;
use global_dedup::sim::SimTime;
use global_dedup::store::{ClientId, ClusterBuilder, ObjectName};

const CS: u32 = 8 * 1024;
const SHARDS: usize = 4;

fn store_with(config: DedupConfig) -> DedupStore {
    let cluster = ClusterBuilder::new().nodes(4).osds_per_node(2).build();
    DedupStore::with_default_pools(cluster, config)
}

fn sharded_store() -> DedupStore {
    store_with(
        DedupConfig::with_chunk_size(CS)
            .cache_policy(CachePolicy::EvictAll)
            .foreground_shards(SHARDS),
    )
}

fn shard_ops(s: &DedupStore, shard: usize) -> u64 {
    s.registry()
        .counter_with("service.shard.ops", &[("shard", &shard.to_string())])
        .get()
}

fn lock_waits(s: &DedupStore) -> u64 {
    s.registry().histogram("service.shard.lock_wait_ns").count()
}

fn t(secs: u64) -> SimTime {
    SimTime::from_secs(secs)
}

fn fill(s: &DedupStore, name: &str, seed: u8, now: SimTime) {
    let data = vec![seed; 2 * CS as usize];
    let _ = s
        .write(ClientId(0), &ObjectName::new(name), 0, &data, now)
        .expect("write");
}

/// The invariant under audit: per-shard counters sum to the number of
/// foreground ops, and the lock-wait histogram saw one sample per op.
fn assert_ops_accounted(s: &DedupStore, expected_ops: u64, context: &str) {
    let total: u64 = (0..SHARDS).map(|i| shard_ops(s, i)).sum();
    assert_eq!(
        total, expected_ops,
        "shard op counters out of sync after {context}"
    );
    assert_eq!(
        lock_waits(s),
        expected_ops,
        "lock-wait samples out of sync after {context}"
    );
}

#[test]
fn every_foreground_op_lands_on_its_routed_shard() {
    let s = sharded_store();
    let names: Vec<ObjectName> = (0..12)
        .map(|i| ObjectName::new(format!("obj-{i}")))
        .collect();
    let mut expected = [0u64; SHARDS];

    for (i, name) in names.iter().enumerate() {
        fill(&s, name.as_str(), i as u8, t(0));
        expected[shard_index(name, SHARDS)] += 1;
    }
    for (i, name) in names.iter().enumerate() {
        let r = s
            .read(ClientId(0), name, 0, 2 * CS as u64, t(1))
            .expect("read");
        assert_eq!(r.value, vec![i as u8; 2 * CS as usize]);
        expected[shard_index(name, SHARDS)] += 1;
    }

    for (shard, &want) in expected.iter().enumerate() {
        assert_eq!(
            shard_ops(&s, shard),
            want,
            "shard {shard} counter diverged from routing"
        );
    }
    assert_ops_accounted(&s, 24, "writes + reads");
}

#[test]
fn truncate_and_delete_count_as_shard_ops() {
    let s = sharded_store();
    let name = ObjectName::new("churn");
    let shard = shard_index(&name, SHARDS);

    fill(&s, name.as_str(), 9, t(0));
    let _ = s
        .truncate(ClientId(0), &name, CS as u64, t(1))
        .expect("truncate");
    let _ = s.delete(ClientId(0), &name).expect("delete");

    assert_eq!(shard_ops(&s, shard), 3, "write + truncate + delete");
    assert_ops_accounted(&s, 3, "churn sequence");
}

#[test]
fn background_flush_takes_no_shard_locks() {
    let mut s = sharded_store();
    fill(&s, "bg", 5, t(0));
    let before = lock_waits(&s);
    let _ = s.flush_all(t(100)).expect("flush");
    assert_eq!(
        lock_waits(&s),
        before,
        "background flush must rely on whole-store exclusion, not shard locks"
    );
    assert_ops_accounted(&s, 1, "background flush");
}

#[test]
fn labelled_series_appear_in_snapshots() {
    let s = sharded_store();
    fill(&s, "snap", 1, t(0));
    let snap = s.registry().snapshot(t(2));
    let shard_series: Vec<_> = snap
        .iter()
        .filter(|m| m.name == "service.shard.ops")
        .collect();
    assert_eq!(
        shard_series.len(),
        SHARDS,
        "one labelled ops series per shard"
    );
    let total: u64 = shard_series
        .iter()
        .map(|m| match m.value {
            SnapshotValue::Counter(v) => v,
            _ => panic!("service.shard.ops must snapshot as a counter"),
        })
        .sum();
    assert_eq!(total, 1, "the one write shows up in the snapshot");
    assert!(
        shard_series
            .iter()
            .all(|m| m.labels.iter().any(|(k, _)| k == "shard")),
        "series carry the shard label"
    );
    assert!(
        snap.iter().any(|m| m.name == "service.shard.lock_wait_ns"),
        "lock-wait histogram exported"
    );
}
