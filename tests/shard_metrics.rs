//! Audit of the sharded data plane's contention instruments: every
//! foreground op (write, read, truncate, delete) must increment exactly
//! one `service.shard.ops{shard=i}` counter — the one [`shard_index`]
//! routes its object to — plus the matching per-mode counter
//! (`service.shard.read_ops` for shared-mode reads,
//! `service.shard.write_ops` for exclusive-mode mutations), and record
//! exactly one sample in the `service.shard.lock_wait_ns` histogram
//! under its op class's `mode=read|write` label. The labelled series
//! must also appear in registry snapshots, which is what the metrics
//! sidecar samples.

use global_dedup::core::{shard_index, CachePolicy, DedupConfig, DedupStore};
use global_dedup::obs::SnapshotValue;
use global_dedup::sim::SimTime;
use global_dedup::store::{ClientId, ClusterBuilder, ObjectName};

const CS: u32 = 8 * 1024;
const SHARDS: usize = 4;

fn store_with(config: DedupConfig) -> DedupStore {
    let cluster = ClusterBuilder::new().nodes(4).osds_per_node(2).build();
    DedupStore::with_default_pools(cluster, config)
}

fn sharded_store() -> DedupStore {
    store_with(
        DedupConfig::with_chunk_size(CS)
            .cache_policy(CachePolicy::EvictAll)
            .foreground_shards(SHARDS),
    )
}

fn shard_ops(s: &DedupStore, shard: usize) -> u64 {
    s.registry()
        .counter_with("service.shard.ops", &[("shard", &shard.to_string())])
        .get()
}

fn shard_mode_ops(s: &DedupStore, name: &str, shard: usize) -> u64 {
    s.registry()
        .counter_with(name, &[("shard", &shard.to_string())])
        .get()
}

fn lock_waits_mode(s: &DedupStore, mode: &str) -> u64 {
    s.registry()
        .histogram_with("service.shard.lock_wait_ns", &[("mode", mode)])
        .count()
}

fn lock_waits(s: &DedupStore) -> u64 {
    lock_waits_mode(s, "read") + lock_waits_mode(s, "write")
}

fn t(secs: u64) -> SimTime {
    SimTime::from_secs(secs)
}

fn fill(s: &DedupStore, name: &str, seed: u8, now: SimTime) {
    let data = vec![seed; 2 * CS as usize];
    let _ = s
        .write(ClientId(0), &ObjectName::new(name), 0, &data, now)
        .expect("write");
}

/// The invariant under audit: per-shard counters sum to the number of
/// foreground ops, the per-mode counters partition them, and the
/// mode-labelled lock-wait histograms saw one sample per op of that
/// class.
fn assert_ops_accounted(s: &DedupStore, expected_reads: u64, expected_writes: u64, context: &str) {
    let expected_ops = expected_reads + expected_writes;
    let total: u64 = (0..SHARDS).map(|i| shard_ops(s, i)).sum();
    assert_eq!(
        total, expected_ops,
        "shard op counters out of sync after {context}"
    );
    let reads: u64 = (0..SHARDS)
        .map(|i| shard_mode_ops(s, "service.shard.read_ops", i))
        .sum();
    let writes: u64 = (0..SHARDS)
        .map(|i| shard_mode_ops(s, "service.shard.write_ops", i))
        .sum();
    assert_eq!(
        (reads, writes),
        (expected_reads, expected_writes),
        "per-mode shard counters out of sync after {context}"
    );
    assert_eq!(
        lock_waits_mode(s, "read"),
        expected_reads,
        "read lock-wait samples out of sync after {context}"
    );
    assert_eq!(
        lock_waits_mode(s, "write"),
        expected_writes,
        "write lock-wait samples out of sync after {context}"
    );
}

#[test]
fn every_foreground_op_lands_on_its_routed_shard() {
    let s = sharded_store();
    let names: Vec<ObjectName> = (0..12)
        .map(|i| ObjectName::new(format!("obj-{i}")))
        .collect();
    let mut expected = [0u64; SHARDS];

    for (i, name) in names.iter().enumerate() {
        fill(&s, name.as_str(), i as u8, t(0));
        expected[shard_index(name, SHARDS)] += 1;
    }
    for (i, name) in names.iter().enumerate() {
        let r = s
            .read(ClientId(0), name, 0, 2 * CS as u64, t(1))
            .expect("read");
        assert_eq!(r.value, vec![i as u8; 2 * CS as usize]);
        expected[shard_index(name, SHARDS)] += 1;
    }

    for (shard, &want) in expected.iter().enumerate() {
        assert_eq!(
            shard_ops(&s, shard),
            want,
            "shard {shard} counter diverged from routing"
        );
        // One write and one read per object: the mode split halves each
        // shard's total.
        assert_eq!(
            shard_mode_ops(&s, "service.shard.read_ops", shard),
            want / 2,
            "shard {shard} read-mode counter diverged"
        );
        assert_eq!(
            shard_mode_ops(&s, "service.shard.write_ops", shard),
            want / 2,
            "shard {shard} write-mode counter diverged"
        );
    }
    assert_ops_accounted(&s, 12, 12, "writes + reads");
}

#[test]
fn truncate_and_delete_count_as_shard_ops() {
    let s = sharded_store();
    let name = ObjectName::new("churn");
    let shard = shard_index(&name, SHARDS);

    fill(&s, name.as_str(), 9, t(0));
    let _ = s
        .truncate(ClientId(0), &name, CS as u64, t(1))
        .expect("truncate");
    let _ = s.delete(ClientId(0), &name).expect("delete");

    assert_eq!(shard_ops(&s, shard), 3, "write + truncate + delete");
    assert_eq!(
        shard_mode_ops(&s, "service.shard.write_ops", shard),
        3,
        "truncate and delete are exclusive-mode mutations"
    );
    assert_ops_accounted(&s, 0, 3, "churn sequence");
}

#[test]
fn exclusive_shard_reads_still_count_as_reads() {
    // The bench's reconstructed baseline takes the exclusive lock side
    // for reads, but the op-class accounting must not change: the A/B
    // comparison relies on identical counters in both modes.
    let s = store_with(
        DedupConfig::with_chunk_size(CS)
            .cache_policy(CachePolicy::EvictAll)
            .foreground_shards(SHARDS)
            .exclusive_shard_reads(),
    );
    fill(&s, "ab", 3, t(0));
    let _ = s
        .read(ClientId(0), &ObjectName::new("ab"), 0, CS as u64, t(1))
        .expect("read");
    assert_ops_accounted(&s, 1, 1, "exclusive-read baseline");
}

#[test]
fn background_flush_takes_no_shard_locks() {
    let mut s = sharded_store();
    fill(&s, "bg", 5, t(0));
    let before = lock_waits(&s);
    let _ = s.flush_all(t(100)).expect("flush");
    assert_eq!(
        lock_waits(&s),
        before,
        "background flush must rely on whole-store exclusion, not shard locks"
    );
    assert_ops_accounted(&s, 0, 1, "background flush");
}

#[test]
fn labelled_series_appear_in_snapshots() {
    let s = sharded_store();
    fill(&s, "snap", 1, t(0));
    let snap = s.registry().snapshot(t(2));
    for series in [
        "service.shard.ops",
        "service.shard.read_ops",
        "service.shard.write_ops",
    ] {
        let shard_series: Vec<_> = snap.iter().filter(|m| m.name == series).collect();
        assert_eq!(
            shard_series.len(),
            SHARDS,
            "one labelled {series} series per shard"
        );
        assert!(
            shard_series
                .iter()
                .all(|m| m.labels.iter().any(|(k, _)| k == "shard")),
            "{series} series carry the shard label"
        );
    }
    let total: u64 = snap
        .iter()
        .filter(|m| m.name == "service.shard.ops")
        .map(|m| match m.value {
            SnapshotValue::Counter(v) => v,
            _ => panic!("service.shard.ops must snapshot as a counter"),
        })
        .sum();
    assert_eq!(total, 1, "the one write shows up in the snapshot");
    let lock_modes: Vec<_> = snap
        .iter()
        .filter(|m| m.name == "service.shard.lock_wait_ns")
        .collect();
    assert_eq!(
        lock_modes.len(),
        2,
        "lock-wait histogram exported once per mode"
    );
    for mode in ["read", "write"] {
        assert!(
            lock_modes
                .iter()
                .any(|m| m.labels.iter().any(|(k, v)| k == "mode" && v == mode)),
            "lock-wait series carries mode={mode}"
        );
    }
}
