//! Zero-copy data plane tests: copy accounting on the foreground hot
//! path, pointer-level aliasing across replication/EC fan-out, and
//! property tests pinning the [`bytes::Bytes`] shim to `Vec` semantics.
//!
//! The counters under test are `engine.bytes_copied` (payload bytes that
//! still cross a memcpy anywhere in the stack) and `engine.bytes_shared`
//! (bytes moved by refcount bump where the old design copied). The
//! aliasing tests go below the counters and check `Bytes::as_ptr`
//! identity directly: every replica of a write must alias the caller's
//! allocation, and every EC shard must alias one striped encode buffer.

use bytes::Bytes;
use global_dedup::core::{DedupConfig, DedupStore};
use global_dedup::sim::SimTime;
use global_dedup::store::{
    ClientId, ClusterBuilder, IoCtx, ObjectName, Payload, PoolConfig, StoredObject,
};
use proptest::prelude::*;

/// Deterministic pseudo-random bytes.
fn patterned(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        })
        .collect()
}

/// The foreground read hot path (cached object, replicated metadata pool)
/// must perform zero deep copies: the client gets a refcounted view of
/// the stored replica, before *and* after the object is flushed.
#[test]
fn foreground_read_hot_path_is_zero_copy() {
    let cluster = ClusterBuilder::new().nodes(4).osds_per_node(2).build();
    let config = DedupConfig::with_chunk_size(64 * 1024);
    let mut store = DedupStore::with_default_pools(cluster, config);
    let copied = store.registry().counter("engine.bytes_copied");
    let shared = store.registry().counter("engine.bytes_shared");

    let name = ObjectName::new("hot");
    let data = Bytes::from(patterned(256 * 1024, 1));
    let _ = store
        .write(ClientId(0), &name, 0, data.clone(), SimTime::ZERO)
        .expect("write");

    // Cached read: multi-chunk, but every chunk slices the same replica.
    let before = copied.get();
    let r = store
        .read(
            ClientId(0),
            &name,
            0,
            data.len() as u64,
            SimTime::from_secs(1),
        )
        .expect("cached read");
    assert_eq!(r.value, data);
    assert_eq!(
        copied.get(),
        before,
        "cached foreground read performed a deep copy"
    );
    assert!(shared.get() > 0, "zero-copy moves must be accounted");

    // Post-flush read: cached chunks remain resident under the default
    // cache policy, so the hot path must stay copy-free.
    let _ = store.flush_all(SimTime::from_secs(3600)).expect("flush");
    let before = copied.get();
    let r = store
        .read(
            ClientId(0),
            &name,
            0,
            data.len() as u64,
            SimTime::from_secs(7200),
        )
        .expect("post-flush read");
    assert_eq!(r.value, data);
    assert_eq!(
        copied.get(),
        before,
        "post-flush cached read performed a deep copy"
    );
}

/// Collects what every OSD holds for `name` in `pool`.
fn holdings(
    cluster: &global_dedup::store::Cluster,
    pool: global_dedup::placement::PoolId,
    name: &ObjectName,
) -> Vec<StoredObject> {
    cluster
        .map()
        .osds()
        .iter()
        .filter_map(|info| {
            let guard = cluster.osd_objects(info.id).ok()?;
            guard.get(pool, name).cloned()
        })
        .collect()
}

/// A replicated write fans out by refcount bump: all copies — and the
/// caller's buffer — share one allocation (pointer identity).
#[test]
fn replicated_fanout_aliases_one_buffer() {
    let mut cluster = ClusterBuilder::new().nodes(4).osds_per_node(2).build();
    let pool = cluster.create_pool(PoolConfig::replicated("r3", 3));
    let ctx = IoCtx::new(pool);
    let name = ObjectName::new("fan");
    let data = Bytes::from(patterned(128 * 1024, 2));

    let _ = cluster
        .write_full(&ctx, &name, data.clone())
        .expect("replicated write");

    let copies = holdings(&cluster, pool, &name);
    assert_eq!(copies.len(), 3, "expected one copy per replica");
    for obj in &copies {
        match &obj.payload {
            Payload::Full(b) => {
                assert!(
                    b.same_parent(&data),
                    "replica does not share the writer's allocation"
                );
                assert_eq!(b.as_ptr(), data.as_ptr(), "replica was deep-copied");
            }
            Payload::Shard { .. } => panic!("replicated pool stored a shard"),
        }
    }
}

/// An EC write stripes all k+m shards into one contiguous encode buffer;
/// every stored shard is a slice of that single parent allocation.
#[test]
fn ec_fanout_shards_share_one_parent() {
    let mut cluster = ClusterBuilder::new().nodes(8).osds_per_node(2).build();
    let pool = cluster.create_pool(PoolConfig::erasure("ec42", 4, 2));
    let ctx = IoCtx::new(pool);
    let name = ObjectName::new("striped");
    let data = patterned(96 * 1024, 3);

    let _ = cluster
        .write_full(&ctx, &name, data.clone())
        .expect("EC write");

    let shards = holdings(&cluster, pool, &name);
    assert_eq!(shards.len(), 6, "expected k+m = 6 shards");
    let mut views = Vec::new();
    let mut indices = Vec::new();
    for obj in &shards {
        match &obj.payload {
            Payload::Shard {
                index,
                object_len,
                bytes,
            } => {
                assert_eq!(*object_len, data.len() as u64);
                indices.push(*index);
                views.push(bytes.clone());
            }
            Payload::Full(_) => panic!("EC pool stored a full copy"),
        }
    }
    indices.sort_unstable();
    assert_eq!(indices, [0, 1, 2, 3, 4, 5]);
    for pair in views.windows(2) {
        assert!(
            pair[0].same_parent(&pair[1]),
            "EC shards do not share the striped encode buffer"
        );
    }

    // Round trip still holds through the shared buffer.
    let t = cluster
        .read_at(&ctx, &name, 0, data.len() as u64)
        .expect("EC read");
    assert_eq!(&t.value[..], &data[..]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `Bytes::slice` agrees with `Vec` range indexing for every
    /// in-bounds range.
    #[test]
    fn bytes_slice_matches_vec(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        a in 0usize..512,
        b in 0usize..512,
    ) {
        let (a, b) = (a.min(data.len()), b.min(data.len()));
        let (a, b) = (a.min(b), a.max(b));
        let bytes = Bytes::from(data.clone());
        let view = bytes.slice(a..b);
        prop_assert_eq!(&view[..], &data[a..b]);
        prop_assert_eq!(view.len(), b - a);
        // Slicing is aliasing, never copying.
        if b > a {
            prop_assert!(view.same_parent(&bytes));
        }
    }

    /// `split_to`/`split_off` partition the buffer exactly like splitting
    /// a `Vec` at the same index, and both halves alias the parent.
    #[test]
    fn bytes_split_matches_vec(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        at in 0usize..512,
    ) {
        let at = at.min(data.len());

        let mut tail = Bytes::from(data.clone());
        let head = tail.split_to(at);
        prop_assert_eq!(&head[..], &data[..at]);
        prop_assert_eq!(&tail[..], &data[at..]);

        let mut head2 = Bytes::from(data.clone());
        let tail2 = head2.split_off(at);
        prop_assert_eq!(&head2[..], &data[..at]);
        prop_assert_eq!(&tail2[..], &data[at..]);

        // Adjacent halves of one parent rejoin without copying.
        if let Some(joined) = head.try_join(&tail) {
            prop_assert_eq!(&joined[..], &data[..]);
        } else {
            prop_assert!(false, "adjacent split halves must rejoin");
        }
    }

    /// `truncate` matches `Vec::truncate`; copy-on-write mutation of one
    /// view never disturbs its siblings.
    #[test]
    fn bytes_cow_isolates_siblings(
        data in proptest::collection::vec(any::<u8>(), 1..256),
        at in 0usize..256,
        poke in any::<u8>(),
    ) {
        let at = at.min(data.len() - 1);
        let parent = Bytes::from(data.clone());
        let mut view = parent.slice(at..);
        // CoW: the sibling and the parent both survive the mutation.
        view.make_mut()[0] = poke;
        prop_assert_eq!(view[0], poke);
        prop_assert_eq!(&parent[..], &data[..]);

        let mut trunc = parent.clone();
        trunc.truncate(at);
        let mut model = data.clone();
        model.truncate(at);
        prop_assert_eq!(&trunc[..], &model[..]);
    }
}
