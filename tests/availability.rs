//! Availability integration: device failures, recovery, rebalancing, and
//! scrub with deduplicated data — the paper's claim that *self-contained
//! objects* let the store's ordinary machinery protect dedup state.

use global_dedup::core::{CachePolicy, DedupConfig, DedupStore};
use global_dedup::placement::OsdId;
use global_dedup::sim::SimTime;
use global_dedup::store::{ClientId, ClusterBuilder, ObjectName, PoolConfig};
use global_dedup::workloads::fio::FioSpec;

fn loaded_store(flush: bool) -> (DedupStore, global_dedup::workloads::Dataset) {
    let dataset = FioSpec::new(8 << 20, 0.5).dataset();
    let cluster = ClusterBuilder::new().nodes(4).osds_per_node(4).build();
    let mut store = DedupStore::with_default_pools(
        cluster,
        DedupConfig::with_chunk_size(32 * 1024).cache_policy(CachePolicy::EvictAll),
    );
    for obj in &dataset.objects {
        let _ = store
            .write(
                ClientId(0),
                &ObjectName::new(&*obj.name),
                0,
                &obj.data,
                SimTime::ZERO,
            )
            .expect("write");
    }
    if flush {
        let _ = store.flush_all(SimTime::from_secs(100)).expect("flush");
    }
    (store, dataset)
}

fn verify(store: &mut DedupStore, dataset: &global_dedup::workloads::Dataset) {
    for obj in &dataset.objects {
        let r = store
            .read(
                ClientId(0),
                &ObjectName::new(&*obj.name),
                0,
                obj.data.len() as u64,
                SimTime::from_secs(500),
            )
            .expect("read");
        assert_eq!(r.value, obj.data, "object {}", obj.name);
    }
}

#[test]
fn osd_failure_after_flush_recovers_chunks_and_metadata() {
    let (mut store, dataset) = loaded_store(true);
    store.cluster_mut().fail_osd(OsdId(4));
    let t = store.cluster_mut().recover().expect("recover");
    assert!(t.value.lost.is_empty());
    verify(&mut store, &dataset);
    for pool in [store.metadata_pool(), store.chunk_pool()] {
        assert!(store.cluster().scrub(pool).expect("scrub").is_empty());
    }
}

#[test]
fn osd_failure_before_flush_keeps_dirty_data_safe() {
    // Dirty (not yet deduplicated) data lives in the replicated metadata
    // pool; losing one device must not lose it, and the flush must still
    // converge afterwards.
    let (mut store, dataset) = loaded_store(false);
    store.cluster_mut().fail_osd(OsdId(7));
    let _ = store.cluster_mut().recover().expect("recover");
    let _ = store.flush_all(SimTime::from_secs(200)).expect("flush");
    verify(&mut store, &dataset);
}

#[test]
fn failure_during_backlog_interleaved_with_flush() {
    let (mut store, dataset) = loaded_store(false);
    // Flush half the queue, fail a device mid-way, recover, finish.
    for _ in 0..store.dirty_len() / 2 {
        let _ = store.flush_next(SimTime::from_secs(50)).expect("flush");
    }
    store.cluster_mut().fail_osd(OsdId(12));
    let _ = store.cluster_mut().recover().expect("recover");
    let _ = store.flush_all(SimTime::from_secs(300)).expect("flush");
    verify(&mut store, &dataset);
}

#[test]
fn double_failure_within_replication_tolerance_of_distinct_pgs() {
    let (mut store, dataset) = loaded_store(true);
    // Fail one device, recover, fail another, recover: replication x2
    // tolerates sequential single failures indefinitely.
    for victim in [OsdId(1), OsdId(9)] {
        store.cluster_mut().fail_osd(victim);
        let t = store.cluster_mut().recover().expect("recover");
        assert!(t.value.lost.is_empty(), "lost objects after {victim}");
    }
    verify(&mut store, &dataset);
}

#[test]
fn cluster_expansion_rebalances_dedup_pools() {
    let (mut store, dataset) = loaded_store(true);
    let before: u64 = store.space_report().expect("r").raw_bytes;
    let node = store.cluster().map().osd(OsdId(0)).node;
    let new_osd = store.cluster_mut().add_osd(node, 1.0);
    let t = store.cluster_mut().recover().expect("rebalance");
    assert!(t.value.objects_repaired > 0, "no data moved to the new OSD");
    let after = store.space_report().expect("r").raw_bytes;
    assert_eq!(before, after, "rebalance must not change the footprint");
    let new_stats: u64 = store
        .cluster()
        .osd_objects(new_osd)
        .expect("osd")
        .iter()
        .map(|(_, _, o)| o.stored_bytes)
        .sum();
    assert!(new_stats > 0, "new OSD received no data");
    verify(&mut store, &dataset);
}

#[test]
fn ec_chunk_pool_survives_single_failure() {
    let dataset = FioSpec::new(4 << 20, 0.5).dataset();
    let cluster = ClusterBuilder::new().build();
    let mut store = DedupStore::new(
        cluster,
        PoolConfig::replicated("metadata", 2),
        PoolConfig::erasure("chunks", 2, 1),
        DedupConfig::with_chunk_size(32 * 1024).cache_policy(CachePolicy::EvictAll),
    );
    for obj in &dataset.objects {
        let _ = store
            .write(
                ClientId(0),
                &ObjectName::new(&*obj.name),
                0,
                &obj.data,
                SimTime::ZERO,
            )
            .expect("write");
    }
    let _ = store.flush_all(SimTime::from_secs(100)).expect("flush");
    store.cluster_mut().fail_osd(OsdId(3));
    let t = store.cluster_mut().recover().expect("recover");
    assert!(t.value.lost.is_empty(), "EC 2+1 tolerates one loss");
    verify(&mut store, &dataset);
    assert!(store
        .cluster()
        .scrub(store.chunk_pool())
        .expect("scrub")
        .is_empty());
}

#[test]
fn reads_work_degraded_before_recovery() {
    let (mut store, dataset) = loaded_store(true);
    // Down (not wiped) device: no recovery yet, reads must still succeed
    // from surviving replicas.
    store.cluster_mut().mark_down(OsdId(5));
    verify(&mut store, &dataset);
}

#[test]
fn refcounts_survive_recovery() {
    use global_dedup::core::REFCOUNT_XATTR;
    use global_dedup::fingerprint::Fingerprint;
    use global_dedup::store::IoCtx;

    let cluster = ClusterBuilder::new().build();
    let mut store = DedupStore::with_default_pools(
        cluster,
        DedupConfig::with_chunk_size(32 * 1024).cache_policy(CachePolicy::EvictAll),
    );
    let data = vec![9u8; 32 * 1024];
    for i in 0..5 {
        let _ = store
            .write(
                ClientId(0),
                &ObjectName::new(format!("o{i}")),
                0,
                &data,
                SimTime::ZERO,
            )
            .expect("write");
    }
    let _ = store.flush_all(SimTime::from_secs(10)).expect("flush");
    let chunk_name = ObjectName::new(Fingerprint::of(&data).to_object_name());
    let victim = store
        .cluster()
        .primary_of(store.chunk_pool(), &chunk_name)
        .expect("primary");
    store.cluster_mut().fail_osd(victim);
    let _ = store.cluster_mut().recover().expect("recover");
    let cctx = IoCtx::new(store.chunk_pool());
    let count = store
        .cluster_mut()
        .get_xattr(&cctx, &chunk_name, REFCOUNT_XATTR)
        .expect("xattr")
        .value
        .and_then(|v| global_dedup::core::refs::decode_refcount(&v))
        .expect("count");
    assert_eq!(count, 5, "refcount must survive device loss");
    // Deleting all referrers still reclaims the chunk afterwards.
    for i in 0..5 {
        let _ = store
            .delete(ClientId(0), &ObjectName::new(format!("o{i}")))
            .expect("delete");
    }
    assert_eq!(store.space_report().expect("r").chunk_objects, 0);
}
