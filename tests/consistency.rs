//! Consistency-model integration tests (paper §4.6, Fig. 9): crash the
//! flush protocol at every injectable point, in every order, and verify
//! the system re-converges with no lost data, no refcount leaks, and no
//! stuck dirty state.

use global_dedup::core::refs::{decode_refcount, BackRef};
use global_dedup::core::{CachePolicy, DedupConfig, DedupStore, FailurePoint, REFCOUNT_XATTR};
use global_dedup::sim::SimTime;
use global_dedup::store::{ClientId, ClusterBuilder, IoCtx, ObjectName};

const CS: u32 = 8 * 1024;

fn store() -> DedupStore {
    let cluster = ClusterBuilder::new().build();
    DedupStore::with_default_pools(
        cluster,
        DedupConfig::with_chunk_size(CS).cache_policy(CachePolicy::EvictAll),
    )
}

fn patterned(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as u8
        })
        .collect()
}

/// Counts every chunk object's refcount and compares with the actual
/// number of back references — they must always agree.
fn assert_refcounts_consistent(store: &mut DedupStore) {
    let chunk_pool = store.chunk_pool();
    let names = store.cluster().list_objects(chunk_pool).expect("list");
    for name in names {
        let cctx = IoCtx::new(chunk_pool);
        let count = store
            .cluster_mut()
            .get_xattr(&cctx, &name, REFCOUNT_XATTR)
            .expect("xattr")
            .value
            .and_then(|v| decode_refcount(&v))
            .expect("refcount present");
        let refs = store
            .cluster_mut()
            .omap_entries(&cctx, &name)
            .expect("omap")
            .value
            .keys()
            .filter(|k| BackRef::is_ref_key(k))
            .count() as u64;
        assert_eq!(count, refs, "refcount vs backrefs on {name}");
        assert!(count > 0, "zero-ref chunk {name} must have been deleted");
    }
}

#[test]
fn every_failure_point_converges_after_retry() {
    for failure in [
        FailurePoint::BeforeChunkStore,
        FailurePoint::AfterChunkStore,
    ] {
        let mut s = store();
        let name = ObjectName::new("obj");
        let data = patterned(4 * CS as usize, 11);
        let _ = s
            .write(ClientId(0), &name, 0, &data, SimTime::ZERO)
            .expect("write");
        let rep = s
            .flush_object_with_failure(&name, SimTime::from_secs(100), Some(failure))
            .expect("flush");
        assert!(rep.value.aborted, "{failure:?} must abort");
        // Engine restart: dirty state reconstructed from the objects.
        assert_eq!(s.recover_dirty_queue().expect("recover"), 1);
        let _ = s.flush_all(SimTime::from_secs(200)).expect("retry");
        let r = s
            .read(
                ClientId(0),
                &name,
                0,
                data.len() as u64,
                SimTime::from_secs(300),
            )
            .expect("read");
        assert_eq!(r.value, data, "{failure:?}");
        assert_refcounts_consistent(&mut s);
        assert_eq!(s.dirty_len(), 0);
    }
}

#[test]
fn repeated_crashes_then_converge() {
    // Crash the flush at alternating points five times in a row; the
    // protocol must stay idempotent throughout.
    let mut s = store();
    let name = ObjectName::new("obj");
    let data = patterned(4 * CS as usize, 13);
    let _ = s
        .write(ClientId(0), &name, 0, &data, SimTime::ZERO)
        .expect("write");
    for i in 0..5 {
        let failure = if i % 2 == 0 {
            FailurePoint::AfterChunkStore
        } else {
            FailurePoint::BeforeChunkStore
        };
        let _ = s
            .flush_object_with_failure(&name, SimTime::from_secs(100 + i), Some(failure))
            .expect("flush");
        s.recover_dirty_queue().expect("recover");
    }
    let _ = s.flush_all(SimTime::from_secs(500)).expect("final");
    let r = s
        .read(
            ClientId(0),
            &name,
            0,
            data.len() as u64,
            SimTime::from_secs(600),
        )
        .expect("read");
    assert_eq!(r.value, data);
    assert_refcounts_consistent(&mut s);
}

#[test]
fn crash_between_overwrites_does_not_leak_old_chunks() {
    let mut s = store();
    let name = ObjectName::new("obj");
    let v1 = patterned(CS as usize, 17);
    let v2 = patterned(CS as usize, 19);
    let _ = s
        .write(ClientId(0), &name, 0, &v1, SimTime::ZERO)
        .expect("write");
    let _ = s.flush_all(SimTime::from_secs(10)).expect("flush v1");
    // Overwrite, crash mid-flush (after chunk store, before map update).
    let _ = s
        .write(ClientId(0), &name, 0, &v2, SimTime::from_secs(20))
        .expect("write");
    let _ = s
        .flush_object_with_failure(
            &name,
            SimTime::from_secs(100),
            Some(FailurePoint::AfterChunkStore),
        )
        .expect("flush");
    s.recover_dirty_queue().expect("recover");
    let _ = s.flush_all(SimTime::from_secs(200)).expect("retry");
    // Old chunk fully dereferenced, new chunk holds the single reference.
    let report = s.space_report().expect("report");
    assert_eq!(report.chunk_objects, 1, "v1 chunk must be reclaimed");
    assert_refcounts_consistent(&mut s);
    let r = s
        .read(
            ClientId(0),
            &name,
            0,
            v2.len() as u64,
            SimTime::from_secs(300),
        )
        .expect("read");
    assert_eq!(r.value, v2);
}

#[test]
fn crash_with_shared_chunks_keeps_sharers_safe() {
    // Two objects share content; a crashed flush of the second must not
    // corrupt the first's reference.
    let mut s = store();
    let data = patterned(CS as usize, 23);
    let a = ObjectName::new("a");
    let b = ObjectName::new("b");
    let _ = s
        .write(ClientId(0), &a, 0, &data, SimTime::ZERO)
        .expect("write");
    let _ = s.flush_all(SimTime::from_secs(10)).expect("flush a");
    let _ = s
        .write(ClientId(0), &b, 0, &data, SimTime::from_secs(20))
        .expect("write");
    let _ = s
        .flush_object_with_failure(
            &b,
            SimTime::from_secs(100),
            Some(FailurePoint::AfterChunkStore),
        )
        .expect("flush");
    s.recover_dirty_queue().expect("recover");
    let _ = s.flush_all(SimTime::from_secs(200)).expect("retry");
    assert_refcounts_consistent(&mut s);
    // Deleting b leaves a's data intact; deleting a reclaims the chunk.
    let _ = s.delete(ClientId(0), &b).expect("delete b");
    let r = s
        .read(
            ClientId(0),
            &a,
            0,
            data.len() as u64,
            SimTime::from_secs(300),
        )
        .expect("read");
    assert_eq!(r.value, data);
    let _ = s.delete(ClientId(0), &a).expect("delete a");
    assert_eq!(s.space_report().expect("r").chunk_objects, 0);
}

#[test]
fn foreground_writes_between_crash_and_retry_win() {
    // A crashed flush must not resurrect stale data over a newer write.
    let mut s = store();
    let name = ObjectName::new("obj");
    let v1 = patterned(CS as usize, 29);
    let _ = s
        .write(ClientId(0), &name, 0, &v1, SimTime::ZERO)
        .expect("write");
    let _ = s
        .flush_object_with_failure(
            &name,
            SimTime::from_secs(100),
            Some(FailurePoint::AfterChunkStore),
        )
        .expect("flush");
    // Newer foreground write lands before the retry.
    let v2 = patterned(CS as usize, 31);
    let _ = s
        .write(ClientId(0), &name, 0, &v2, SimTime::from_secs(150))
        .expect("write");
    s.recover_dirty_queue().expect("recover");
    let _ = s.flush_all(SimTime::from_secs(200)).expect("retry");
    let r = s
        .read(
            ClientId(0),
            &name,
            0,
            v2.len() as u64,
            SimTime::from_secs(300),
        )
        .expect("read");
    assert_eq!(r.value, v2, "latest write must win");
    assert_refcounts_consistent(&mut s);
}

#[test]
fn osd_failure_combined_with_flush_crash() {
    // The hardest case: a flush crashes AND a device dies before retry.
    let mut s = store();
    let name = ObjectName::new("obj");
    let data = patterned(4 * CS as usize, 37);
    let _ = s
        .write(ClientId(0), &name, 0, &data, SimTime::ZERO)
        .expect("write");
    let _ = s
        .flush_object_with_failure(
            &name,
            SimTime::from_secs(100),
            Some(FailurePoint::AfterChunkStore),
        )
        .expect("flush");
    let victim = s
        .cluster()
        .primary_of(s.metadata_pool(), &name)
        .expect("primary");
    s.cluster_mut().fail_osd(victim);
    let _ = s.cluster_mut().recover().expect("recover cluster");
    s.recover_dirty_queue().expect("recover engine");
    let _ = s.flush_all(SimTime::from_secs(200)).expect("retry");
    let r = s
        .read(
            ClientId(0),
            &name,
            0,
            data.len() as u64,
            SimTime::from_secs(300),
        )
        .expect("read");
    assert_eq!(r.value, data);
    assert_refcounts_consistent(&mut s);
}
