//! Multi-threaded stress test for [`DedupService`]: writer threads,
//! reader threads, a delete/truncate churn mix, and the background flush
//! worker race across the sharded foreground data plane while the
//! pipeline stages, fingerprints (lock released), and commits batches.
//! The invariants:
//!
//! - no deadlock or worker livelock (the test terminates),
//! - read-your-writes holds for objects a thread owns exclusively —
//!   including immediately after truncate and delete,
//! - concurrent whole-object overwrites are atomic (readers only ever see
//!   one writer's fill pattern, never a mix),
//! - the background worker hits no engine errors, and
//! - after settling, every chunk reference resolves
//!   ([`DedupStore::verify_references`] is clean) and nothing is dirty.
//!
//! Shard routing itself is covered by a proptest below: it must be a pure
//! function of the object name.
//!
//! A second regime hammers ONE object — the worst case for the
//! reader-writer shard plane, where every op maps to the same lock — with
//! eight concurrent readers, one writer, and racing background ticks:
//! reads must be torn-free and the writer keeps read-your-writes even
//! while sharing its shard's lock with readers. A proptest additionally
//! checks that concurrent same-shard readers all see identical bytes.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use global_dedup::core::{shard_index, DedupConfig, DedupService, DedupStore};
use global_dedup::sim::SimTime;
use global_dedup::store::{ClientId, ClusterBuilder, ObjectName};
use proptest::prelude::*;

const CS: u32 = 8 * 1024;
const OBJECT_BYTES: usize = 2 * CS as usize;
const WRITERS: u32 = 8;
const ROUNDS: usize = 12;
const SHARED_OBJECTS: usize = 3;
const SHARDS: usize = 4;

fn patterned(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as u8
        })
        .collect()
}

#[test]
fn writers_readers_and_flusher_race_without_corruption() {
    let cluster = ClusterBuilder::new().nodes(4).osds_per_node(2).build();
    // Hotness-aware policy + small batches + a 2-wide fingerprint pool:
    // the worker keeps skipping the hammered shared objects (exercising
    // the no-progress tick break) while cold private objects flush
    // through the staged pipeline under racing foreground mutations.
    // Four namespace shards force eight writers to collide pairwise on
    // shard locks while distinct shards proceed in parallel.
    let config = DedupConfig::with_chunk_size(CS)
        .flush_batch_size(4)
        .flush_parallelism(2)
        .foreground_shards(SHARDS);
    let svc = Arc::new(DedupService::start(DedupStore::with_default_pools(
        cluster, config,
    )));

    let mut handles = Vec::new();

    // Writers: exclusive objects (read-your-writes asserted inline) plus
    // shared objects everyone overwrites with their own uniform fill,
    // plus an exclusively-owned churn object cycling through
    // write → truncate-shrink → zero-extend → delete.
    for t in 0..WRITERS {
        let svc = Arc::clone(&svc);
        handles.push(std::thread::spawn(move || {
            for round in 0..ROUNDS {
                let now = SimTime::from_secs((round * WRITERS as usize + t as usize) as u64);
                let private = ObjectName::new(format!("private-{t}-{}", round % 3));
                let data = patterned(OBJECT_BYTES, (t as u64) << 32 | round as u64);
                let _ = svc
                    .write(ClientId(t), &private, 0, &data, now)
                    .expect("private write");
                let r = svc
                    .read(ClientId(t), &private, 0, OBJECT_BYTES as u64, now)
                    .expect("read own write");
                assert_eq!(r.value, data, "read-your-writes violated");

                // Churn object: truncate and delete race the background
                // ticks and other shards' foreground ops.
                let churn = ObjectName::new(format!("churn-{t}"));
                let _ = svc
                    .write(ClientId(t), &churn, 0, &data, now)
                    .expect("churn write");
                match round % 4 {
                    1 => {
                        let _ = svc
                            .truncate(ClientId(t), &churn, CS as u64, now)
                            .expect("churn shrink");
                        let r = svc
                            .read(ClientId(t), &churn, 0, CS as u64, now)
                            .expect("read after shrink");
                        assert_eq!(r.value, data[..CS as usize], "shrink lost the prefix");
                    }
                    2 => {
                        let _ = svc
                            .truncate(
                                ClientId(t),
                                &churn,
                                (OBJECT_BYTES + CS as usize) as u64,
                                now,
                            )
                            .expect("churn zero-extend");
                        let r = svc
                            .read(ClientId(t), &churn, OBJECT_BYTES as u64, CS as u64, now)
                            .expect("read extended tail");
                        assert_eq!(r.value, vec![0u8; CS as usize], "extension tail not zero");
                    }
                    3 => {
                        let _ = svc.delete(ClientId(t), &churn).expect("churn delete");
                        assert!(
                            svc.read(ClientId(t), &churn, 0, 1, now).is_err(),
                            "deleted object still readable"
                        );
                    }
                    _ => {}
                }

                let shared = ObjectName::new(format!("shared-{}", round % SHARED_OBJECTS));
                let fill = vec![t as u8 + 1; OBJECT_BYTES];
                let _ = svc
                    .write(ClientId(t), &shared, 0, &fill, now)
                    .expect("shared write");
            }
        }));
    }

    // Readers: shared objects must always read as one uniform fill —
    // whole-object writes are atomic under their shard lock, and a flush
    // committing a stale staged snapshot would tear that.
    for t in 0..2u32 {
        let svc = Arc::clone(&svc);
        handles.push(std::thread::spawn(move || {
            for round in 0..ROUNDS * 2 {
                let name = ObjectName::new(format!("shared-{}", round % SHARED_OBJECTS));
                let now = SimTime::from_secs(100 + round as u64);
                match svc.read(ClientId(100 + t), &name, 0, OBJECT_BYTES as u64, now) {
                    Ok(r) => {
                        let first = r.value[0];
                        assert!(
                            r.value.iter().all(|&b| b == first),
                            "torn read: mixed fills in one object"
                        );
                        assert!(
                            (1..=WRITERS as u8).contains(&first),
                            "fill byte from no known writer"
                        );
                    }
                    Err(_) => {
                        // Not written yet; fine.
                    }
                }
            }
        }));
    }

    // The background worker races everything above.
    for round in 0..ROUNDS * 4 {
        svc.tick(SimTime::from_secs(round as u64));
    }

    for h in handles {
        h.join().expect("stress thread");
    }
    svc.tick(SimTime::from_secs(10_000));
    svc.drain();
    assert_eq!(svc.worker_errors(), 0, "background worker hit errors");

    // Settle: flush everything (hotness ignored), then audit.
    svc.with_store(|s| {
        let _ = s.flush_all(SimTime::from_secs(20_000)).expect("settle");
        assert_eq!(s.dirty_len(), 0, "queue drained");
        assert!(
            s.verify_references().expect("scrub").is_empty(),
            "dangling chunk references after the race"
        );
    });

    // Every object still reads back whole and uniform/consistent.
    for t in 0..WRITERS {
        for slot in 0..3 {
            let name = ObjectName::new(format!("private-{t}-{slot}"));
            let r = svc
                .read(
                    ClientId(t),
                    &name,
                    0,
                    OBJECT_BYTES as u64,
                    SimTime::from_secs(30_000),
                )
                .expect("read after settle");
            assert_eq!(r.value.len(), OBJECT_BYTES);
        }
    }
    // Every foreground op went through one of the configured shards, and
    // their per-shard counters account for all of them.
    svc.with_store(|s| {
        assert_eq!(s.shard_count(), SHARDS);
        let total: u64 = (0..SHARDS)
            .map(|i| {
                s.registry()
                    .counter_with("service.shard.ops", &[("shard", &i.to_string())])
                    .get()
            })
            .sum();
        assert!(total > 0, "shard op counters never moved");
    });
    let store = Arc::try_unwrap(svc)
        .unwrap_or_else(|_| panic!("handles leaked"))
        .shutdown();
    assert_eq!(
        store.stats().writes as usize,
        WRITERS as usize * ROUNDS * 3,
        "every write accounted for"
    );
}

/// The skewed-serving worst case: every op lands on ONE object, so the
/// entire load funnels through a single shard lock. Eight readers spin on
/// the hot object while one writer overwrites it with successive uniform
/// fills and the main thread races background ticks. Shared-mode reads
/// must never observe a torn fill, the writer must read its own writes
/// back, and the settled store must audit clean.
#[test]
fn hot_object_readers_race_one_writer() {
    const READERS: u32 = 8;
    const HOT_ROUNDS: usize = 48;

    let cluster = ClusterBuilder::new().nodes(4).osds_per_node(2).build();
    let config = DedupConfig::with_chunk_size(CS)
        .flush_batch_size(4)
        .flush_parallelism(2)
        .foreground_shards(SHARDS);
    let svc = Arc::new(DedupService::start(DedupStore::with_default_pools(
        cluster, config,
    )));
    let hot = ObjectName::new("hot");
    let _ = svc
        .write(ClientId(0), &hot, 0, [1u8; OBJECT_BYTES], SimTime::ZERO)
        .expect("seed the hot object");

    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for t in 0..READERS {
        let svc = Arc::clone(&svc);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut reads = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let r = svc
                    .read(
                        ClientId(10 + t),
                        &ObjectName::new("hot"),
                        0,
                        OBJECT_BYTES as u64,
                        SimTime::from_secs(reads),
                    )
                    .expect("hot read");
                let first = r.value[0];
                assert!(
                    r.value.iter().all(|&b| b == first),
                    "torn read on the hot object"
                );
                assert!(first >= 1, "fill byte from no known writer");
                reads += 1;
            }
            reads
        }));
    }

    let writer = {
        let svc = Arc::clone(&svc);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let hot = ObjectName::new("hot");
            for round in 0..HOT_ROUNDS {
                let fill = vec![(round % 250) as u8 + 1; OBJECT_BYTES];
                let now = SimTime::from_secs(round as u64);
                let _ = svc
                    .write(ClientId(0), &hot, 0, &fill, now)
                    .expect("hot write");
                let r = svc
                    .read(ClientId(0), &hot, 0, OBJECT_BYTES as u64, now)
                    .expect("writer read-back");
                assert_eq!(r.value, fill, "writer lost read-your-writes");
            }
            stop.store(true, Ordering::Relaxed);
        })
    };

    // Background ticks race the hot-object storm.
    for round in 0..HOT_ROUNDS {
        svc.tick(SimTime::from_secs(round as u64));
    }

    writer.join().expect("writer thread");
    let total_reads: u64 = handles
        .into_iter()
        .map(|h| h.join().expect("reader thread"))
        .sum();
    assert!(total_reads > 0, "readers never ran");

    svc.tick(SimTime::from_secs(10_000));
    svc.drain();
    assert_eq!(svc.worker_errors(), 0, "background worker hit errors");
    svc.with_store(|s| {
        let _ = s.flush_all(SimTime::from_secs(20_000)).expect("settle");
        assert_eq!(s.dirty_len(), 0, "queue drained");
        assert!(
            s.verify_references().expect("scrub").is_empty(),
            "dangling chunk references after the hot-object race"
        );
    });
    let r = svc
        .read(
            ClientId(0),
            &hot,
            0,
            OBJECT_BYTES as u64,
            SimTime::from_secs(30_000),
        )
        .expect("read after settle");
    assert_eq!(
        r.value,
        vec![(HOT_ROUNDS - 1) as u8 % 250 + 1; OBJECT_BYTES],
        "last write did not win"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Concurrent readers of one (same-shard, by construction) object all
    /// return bit-identical bytes: the shared read path — shard read
    /// lock, atomic hitset recording, chunk-stripe lookups — must not let
    /// read concurrency perturb the returned data.
    #[test]
    fn concurrent_same_shard_reads_are_identical(seed in any::<u64>()) {
        let cluster = ClusterBuilder::new().nodes(4).osds_per_node(2).build();
        let svc = Arc::new(DedupService::start(DedupStore::with_default_pools(
            cluster,
            DedupConfig::with_chunk_size(CS).foreground_shards(SHARDS),
        )));
        let data = patterned(OBJECT_BYTES, seed);
        let _ = svc
            .write(ClientId(0), &ObjectName::new("probe"), 0, &data, SimTime::ZERO)
            .expect("probe write");
        let results: Vec<Vec<u8>> = (0..4u32)
            .map(|t| {
                let svc = Arc::clone(&svc);
                std::thread::spawn(move || {
                    let mut last = Vec::new();
                    for k in 0..4u64 {
                        last = svc
                            .read(
                                ClientId(t),
                                &ObjectName::new("probe"),
                                0,
                                OBJECT_BYTES as u64,
                                SimTime::from_secs(k),
                            )
                            .expect("concurrent read")
                            .value
                            .to_vec();
                    }
                    last
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("reader"))
            .collect();
        for r in &results {
            prop_assert_eq!(r, &data, "concurrent read diverged from the written bytes");
        }
        svc.drain();
    }

    /// Shard routing is a pure function of the object name: stable across
    /// calls and across `ObjectName` instances, always within range, and
    /// independent of any store state.
    #[test]
    fn shard_routing_is_pure(name in ".{1,64}", shards in 1usize..64) {
        let a = ObjectName::new(name.clone());
        let b = ObjectName::new(name);
        let idx = shard_index(&a, shards);
        prop_assert!(idx < shards, "index out of range");
        prop_assert_eq!(idx, shard_index(&a, shards), "unstable across calls");
        prop_assert_eq!(idx, shard_index(&b, shards), "depends on instance identity");
    }

    /// A store's `shard_of` agrees with the free function at its
    /// configured shard count.
    #[test]
    fn store_routing_matches_free_function(name in "[a-z]{1,16}", shards in 1usize..16) {
        let cluster = ClusterBuilder::new().build();
        let store = DedupStore::with_default_pools(
            cluster,
            DedupConfig::default().foreground_shards(shards),
        );
        let n = ObjectName::new(name);
        prop_assert_eq!(store.shard_of(&n), shard_index(&n, shards));
        prop_assert_eq!(store.shard_count(), shards);
    }
}
