//! End-to-end integration: workloads through the full stack
//! (chunking → fingerprints → placement → pools → engine) with capacity
//! verification.

use global_dedup::core::{global_ratio, CachePolicy, DedupConfig, DedupStore};
use global_dedup::sim::SimTime;
use global_dedup::store::{ClientId, ClusterBuilder, ObjectName, PoolConfig};
use global_dedup::workloads::cloud::CloudSpec;
use global_dedup::workloads::fio::FioSpec;
use global_dedup::workloads::vm_images::VmImageSpec;

fn load_and_flush(store: &mut DedupStore, dataset: &global_dedup::workloads::Dataset) {
    for obj in &dataset.objects {
        let _ = store
            .write(
                ClientId(0),
                &ObjectName::new(&*obj.name),
                0,
                &obj.data,
                SimTime::ZERO,
            )
            .expect("write");
    }
    let _ = store.flush_all(SimTime::from_secs(1_000)).expect("flush");
}

fn verify_all(store: &mut DedupStore, dataset: &global_dedup::workloads::Dataset) {
    for obj in &dataset.objects {
        let r = store
            .read(
                ClientId(1),
                &ObjectName::new(&*obj.name),
                0,
                obj.data.len() as u64,
                SimTime::from_secs(2_000),
            )
            .expect("read");
        assert_eq!(r.value, obj.data, "object {}", obj.name);
    }
}

#[test]
fn fio_dataset_round_trips_and_dedups() {
    let dataset = FioSpec::new(8 << 20, 0.5).dataset();
    let cluster = ClusterBuilder::new().build();
    let mut store = DedupStore::with_default_pools(
        cluster,
        DedupConfig::with_chunk_size(32 * 1024).cache_policy(CachePolicy::EvictAll),
    );
    load_and_flush(&mut store, &dataset);
    verify_all(&mut store, &dataset);
    // The engine's measured ratio must match the analytical ratio of the
    // dataset itself.
    let analytical = global_ratio(dataset.iter_refs(), 32 * 1024).ratio_percent();
    let measured = store.space_report().expect("report").ideal_ratio_percent();
    assert!(
        (analytical - measured).abs() < 2.0,
        "engine {measured}% vs analytical {analytical}%"
    );
}

#[test]
fn cloud_dataset_on_erasure_coded_chunk_pool() {
    let dataset = CloudSpec::default().scaled(0.25).dataset();
    let cluster = ClusterBuilder::new().build();
    let mut store = DedupStore::new(
        cluster,
        PoolConfig::replicated("metadata", 2),
        PoolConfig::erasure("chunks", 2, 1),
        DedupConfig::with_chunk_size(32 * 1024).cache_policy(CachePolicy::EvictAll),
    );
    load_and_flush(&mut store, &dataset);
    verify_all(&mut store, &dataset);
    // EC chunk pool: raw chunk bytes cost 1.5x, not 2x.
    let usage = store.cluster().usage(store.chunk_pool()).expect("usage");
    let factor = usage.stored_bytes as f64 / usage.logical_bytes.max(1) as f64;
    assert!(
        (factor - 1.5).abs() < 0.01,
        "EC 2+1 raw factor should be 1.5, got {factor}"
    );
}

#[test]
fn vm_images_with_compression_save_capacity_multiplicatively() {
    let spec = VmImageSpec {
        images: 4,
        image_bytes: 2 << 20,
        ..Default::default()
    };
    let build = |compress: bool| {
        let cluster = ClusterBuilder::new().build();
        let meta = PoolConfig::replicated("metadata", 2);
        let chunk = if compress {
            PoolConfig::replicated("chunks", 2).with_compression()
        } else {
            PoolConfig::replicated("chunks", 2)
        };
        DedupStore::new(
            cluster,
            meta,
            chunk,
            DedupConfig::with_chunk_size(32 * 1024).cache_policy(CachePolicy::EvictAll),
        )
    };
    let mut plain = build(false);
    let mut compressed = build(true);
    for store in [&mut plain, &mut compressed] {
        for i in 0..spec.images {
            let img = spec.image(i);
            let _ = store
                .write(
                    ClientId(0),
                    &ObjectName::new(&*img.name),
                    0,
                    &img.data,
                    SimTime::ZERO,
                )
                .expect("write");
        }
        let _ = store.flush_all(SimTime::from_secs(100)).expect("flush");
    }
    let plain_raw = plain.space_report().expect("r").raw_bytes;
    let comp_raw = compressed.space_report().expect("r").raw_bytes;
    assert!(
        comp_raw * 3 < plain_raw * 2,
        "compression on top of dedup should save >1/3: {plain_raw} -> {comp_raw}"
    );
    // Reads still exact through decompression-free path (store keeps raw).
    let img = spec.image(2);
    let r = compressed
        .read(
            ClientId(0),
            &ObjectName::new(&*img.name),
            0,
            img.data.len() as u64,
            SimTime::from_secs(200),
        )
        .expect("read");
    assert_eq!(r.value, img.data);
}

#[test]
fn sixteen_kib_chunks_pay_more_metadata_than_sixty_four() {
    let dataset = CloudSpec::default().scaled(0.25).dataset();
    let mut metadata = Vec::new();
    for chunk_kib in [16u32, 64] {
        let cluster = ClusterBuilder::new().build();
        let mut store = DedupStore::with_default_pools(
            cluster,
            DedupConfig::with_chunk_size(chunk_kib * 1024).cache_policy(CachePolicy::EvictAll),
        );
        load_and_flush(&mut store, &dataset);
        let r = store.space_report().expect("report");
        metadata.push(r.metadata_bytes + r.object_overhead_bytes);
    }
    assert!(
        metadata[0] > metadata[1] * 3,
        "16 KiB metadata {} should be ~4x of 64 KiB {}",
        metadata[0],
        metadata[1]
    );
}

#[test]
fn engine_counters_are_consistent() {
    let dataset = FioSpec::new(2 << 20, 0.8).dataset();
    let cluster = ClusterBuilder::new().build();
    let mut store = DedupStore::with_default_pools(
        cluster,
        DedupConfig::with_chunk_size(32 * 1024).cache_policy(CachePolicy::EvictAll),
    );
    load_and_flush(&mut store, &dataset);
    let flushed = store
        .flush_all(SimTime::from_secs(2_000))
        .expect("idempotent");
    assert_eq!(flushed.value.chunks_flushed, 0, "nothing left dirty");
    let stats = store.stats();
    assert_eq!(stats.writes as usize, dataset.len());
    assert_eq!(stats.bytes_written, dataset.total_bytes());
    assert_eq!(store.dirty_len(), 0);
}
