//! Property-based integration tests: the dedup store must behave exactly
//! like a plain byte-array model under arbitrary write/flush/read
//! interleavings, and core codecs must round-trip arbitrary data.

use std::collections::HashMap;

use global_dedup::core::{CachePolicy, DedupConfig, DedupStore};
use global_dedup::sim::SimTime;
use global_dedup::store::{ClientId, ClusterBuilder, ObjectName};
use proptest::prelude::*;

const CS: u32 = 4 * 1024;
const OBJECTS: usize = 4;
const MAX_OBJECT: usize = 32 * 1024;

/// One step of the randomized scenario.
#[derive(Debug, Clone)]
enum Step {
    Write {
        obj: usize,
        offset: usize,
        len: usize,
        fill: u8,
    },
    FlushAll,
    FlushOne {
        obj: usize,
    },
    Read {
        obj: usize,
        offset: usize,
        len: usize,
    },
    Delete {
        obj: usize,
    },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        4 => (0..OBJECTS, 0..MAX_OBJECT - 1, 1..8 * 1024usize, any::<u8>()).prop_map(
            |(obj, offset, len, fill)| Step::Write {
                obj,
                offset,
                len: len.min(MAX_OBJECT - offset),
                fill,
            }
        ),
        1 => Just(Step::FlushAll),
        1 => (0..OBJECTS).prop_map(|obj| Step::FlushOne { obj }),
        3 => (0..OBJECTS, 0..MAX_OBJECT - 1, 1..8 * 1024usize).prop_map(
            |(obj, offset, len)| Step::Read {
                obj,
                offset,
                len: len.min(MAX_OBJECT - offset),
            }
        ),
        1 => (0..OBJECTS).prop_map(|obj| Step::Delete { obj }),
    ]
}

fn name(obj: usize) -> ObjectName {
    ObjectName::new(format!("prop-{obj}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The dedup store agrees with a plain in-memory model through any
    /// sequence of writes, flushes, reads, and deletes.
    #[test]
    fn store_matches_reference_model(steps in proptest::collection::vec(step_strategy(), 1..60)) {
        let cluster = ClusterBuilder::new().nodes(4).osds_per_node(2).build();
        let mut store = DedupStore::with_default_pools(
            cluster,
            DedupConfig::with_chunk_size(CS).cache_policy(CachePolicy::EvictAll),
        );
        let mut model: HashMap<usize, Vec<u8>> = HashMap::new();
        let mut now = 0u64;
        for step in steps {
            now += 10; // keep hitset heat decaying so flushes proceed
            let t = SimTime::from_secs(now);
            match step {
                Step::Write { obj, offset, len, fill } => {
                    let data = vec![fill; len];
                    let _ = store.write(ClientId(0), &name(obj), offset as u64, &data, t)
                        .expect("write");
                    let m = model.entry(obj).or_default();
                    if m.len() < offset + len {
                        m.resize(offset + len, 0);
                    }
                    m[offset..offset + len].copy_from_slice(&data);
                }
                Step::FlushAll => {
                    let _ = store.flush_all(t).expect("flush");
                }
                Step::FlushOne { obj } => {
                    if model.contains_key(&obj) {
                        let _ = store.flush_object(&name(obj), t).expect("flush one");
                    }
                }
                Step::Read { obj, offset, len } => {
                    match model.get(&obj) {
                        Some(m) if offset + len <= m.len() => {
                            let r = store
                                .read(ClientId(0), &name(obj), offset as u64, len as u64, t)
                                .expect("read");
                            prop_assert_eq!(&r.value, &m[offset..offset + len]);
                        }
                        _ => {
                            // Out of range or missing: the store must refuse.
                            prop_assert!(store
                                .read(ClientId(0), &name(obj), offset as u64, len as u64, t)
                                .is_err());
                        }
                    }
                }
                Step::Delete { obj } => {
                    let _ = store.delete(ClientId(0), &name(obj)).expect("delete");
                    model.remove(&obj);
                }
            }
        }
        // Converge and verify everything end-state.
        let _ = store.flush_all(SimTime::from_secs(now + 100)).expect("final flush");
        for (obj, m) in &model {
            let r = store
                .read(ClientId(0), &name(*obj), 0, m.len() as u64, SimTime::from_secs(now + 200))
                .expect("final read");
            prop_assert_eq!(&r.value, m);
        }
        // No dangling chunks: delete everything, chunk pool must empty.
        for obj in model.keys().copied().collect::<Vec<_>>() {
            let _ = store.delete(ClientId(0), &name(obj)).expect("cleanup");
        }
        prop_assert_eq!(store.space_report().expect("report").chunk_objects, 0);
    }

    /// Erasure round trip for arbitrary data and any recoverable erasure
    /// pattern.
    #[test]
    fn erasure_round_trips(
        data in proptest::collection::vec(any::<u8>(), 1..4096),
        k in 1usize..5,
        m in 1usize..4,
        kill in proptest::collection::vec(any::<u16>(), 0..3),
    ) {
        let rs = global_dedup::erasure::ReedSolomon::new(k, m).expect("codec");
        let shards = rs.encode_object(&data).expect("encode");
        let mut partial: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        let mut killed = 0usize;
        for k_idx in kill {
            let idx = k_idx as usize % partial.len();
            if partial[idx].is_some() && killed < m {
                partial[idx] = None;
                killed += 1;
            }
        }
        let got = rs.decode_object(partial, data.len()).expect("decode");
        prop_assert_eq!(got, data);
    }

    /// Compression round trip for arbitrary bytes.
    #[test]
    fn compression_round_trips(data in proptest::collection::vec(any::<u8>(), 0..16384)) {
        let packed = global_dedup::compress::compress(&data);
        let got = global_dedup::compress::decompress(&packed).expect("decompress");
        prop_assert_eq!(got, data);
    }

    /// Fixed chunking exactly tiles any input.
    #[test]
    fn chunking_tiles(len in 0usize..100_000, cs in 1u32..65536) {
        use global_dedup::chunk::{Chunker, FixedChunker};
        let data = vec![0u8; len];
        let spans = FixedChunker::new(cs).chunks(&data);
        let mut expect = 0u64;
        for s in &spans {
            prop_assert_eq!(s.offset, expect);
            prop_assert!(s.len > 0);
            expect = s.end();
        }
        prop_assert_eq!(expect, len as u64);
    }

    /// Placement always returns distinct devices and is deterministic.
    #[test]
    fn placement_is_sane(names in proptest::collection::vec("[a-z0-9]{1,20}", 1..50)) {
        use global_dedup::placement::{ClusterMap, PgMap, PlacementRule, PoolId};
        let mut map = ClusterMap::new();
        for _ in 0..4 {
            let n = map.add_node();
            for _ in 0..4 {
                map.add_osd(n, 1.0);
            }
        }
        let pgs = PgMap::new(PoolId(1), 64);
        let rule = PlacementRule::spread_nodes(3);
        for name in &names {
            let pg = pgs.pg_of(name.as_bytes());
            let a = map.acting_set(pg, &rule);
            let b = map.acting_set(pg, &rule);
            prop_assert_eq!(&a, &b);
            let mut uniq = a.clone();
            uniq.sort();
            uniq.dedup();
            prop_assert_eq!(uniq.len(), a.len());
        }
    }
}
