//! Offline shim for the `rand` 0.8 API surface this workspace uses.
//!
//! The build environment cannot reach a crates registry, so this crate
//! provides a deterministic xoshiro256** generator behind the familiar
//! `Rng`/`RngCore`/`SeedableRng` traits, plus `gen_range` over the integer
//! and float range types the workloads and benches sample from. Statistical
//! quality is far beyond what the simulator needs; determinism per seed is
//! the property the experiments rely on.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: raw 32/64-bit output and byte filling.
pub trait RngCore {
    /// Next raw 32 bits.
    fn next_u32(&mut self) -> u32;
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// A value sampleable from the "standard" distribution (what `rng.gen()`
/// returns).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}
impl Standard for u16 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}
impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range `gen_range` can sample uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Integer types uniformly sampleable from a range.
///
/// A single generic `SampleRange` impl over this trait (rather than one
/// impl per integer type) is what lets `rng.gen_range(12..=48)` infer the
/// integer type from surrounding usage, as with the real crate.
pub trait SampleUniform: Copy + PartialOrd {
    /// Widens to i128 for overflow-free span arithmetic.
    fn to_i128(self) -> i128;
    /// Narrows back from i128 (caller guarantees the value fits).
    fn from_i128(v: i128) -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}

sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        // Rejection-free modulo is fine here: spans are tiny relative to
        // 2^64, so bias is negligible for simulation.
        let span = (self.end.to_i128() - self.start.to_i128()) as u128;
        let v = (rng.next_u64() as u128) % span;
        T::from_i128(self.start.to_i128() + v as i128)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let span = (end.to_i128() - start.to_i128() + 1) as u128;
        let v = (rng.next_u64() as u128) % span;
        T::from_i128(start.to_i128() + v as i128)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::draw(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution for `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::draw(self) < p
    }

    /// Fills a byte slice (mirror of `Rng::fill` for `[u8]`).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for `rand`'s
    /// `StdRng`; same trait surface, different stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10..20u64);
            assert!((10..20).contains(&v));
            let w = r.gen_range(12..=48u32);
            assert!((12..=48).contains(&w));
            let f = r.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
