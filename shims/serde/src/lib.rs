//! Offline shim for `serde`.
//!
//! The build environment cannot reach a crates registry, so this workspace
//! ships a minimal stand-in: `Serialize`/`Deserialize` exist both as marker
//! traits and as no-op derive macros (from the sibling `serde_derive`
//! shim), which is the entire surface this codebase uses. Actual
//! serialization in the repo is hand-rolled (markdown tables, JSON-lines
//! metric snapshots in `dedup-obs`).

#![forbid(unsafe_code)]

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
