//! Offline shim for `crossbeam`.
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver}` backed by
//! `std::sync::mpsc`. The crossbeam API differs from std's in two ways that
//! matter here: `Sender` is `Sync` (std's is only `Send`) and both ends are
//! cheap handles. A mutex around the std sender restores `Sync`; contention
//! is irrelevant at the command rates the service worker sees.
//!
//! Also provides `crossbeam::thread::scope` — scoped worker threads that may
//! borrow from the caller's stack — backed by `std::thread::scope`. One
//! semantic difference is preserved from crossbeam: a panicking child thread
//! surfaces as an `Err` from `scope` rather than aborting the caller.

#![forbid(unsafe_code)]

pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Cloneable, `Sync` sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: Arc<Mutex<mpsc::Sender<T>>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, failing only if the receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let guard = match self.inner.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Returns a pending value without blocking, if one is queued.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.inner.try_recv().map_err(|_| RecvError)
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                inner: Arc::new(Mutex::new(tx)),
            },
            Receiver { inner: rx },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::unbounded;

        #[test]
        fn send_recv_across_threads() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(7u32).unwrap());
            assert_eq!(rx.recv(), Ok(7));
        }

        #[test]
        fn recv_fails_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert!(rx.recv().is_err());
        }

        #[test]
        fn send_fails_after_receiver_drops() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn sender_is_sync() {
            fn assert_sync<T: Sync>() {}
            assert_sync::<super::Sender<u64>>();
        }
    }
}

pub mod thread {
    //! Scoped threads with the `crossbeam::thread` API subset this
    //! workspace uses: `scope(|s| { s.spawn(|_| ...); })`.

    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Result of a [`scope`] call or a [`ScopedJoinHandle::join`]: `Err`
    /// carries the panic payload of a child thread.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// Handle for spawning scoped threads; passed to the `scope` closure
    /// and to every spawned closure (so workers can spawn siblings).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; it is joined (at the latest) when the
        /// enclosing [`scope`] returns.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result (`Err` if
        /// it panicked).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// Runs `f` with a [`Scope`]; every thread spawned in it is joined
    /// before `scope` returns. A panic in an unjoined child (or in `f`
    /// itself) is returned as `Err` instead of propagating.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        use super::scope;
        use std::sync::atomic::{AtomicU64, Ordering};

        #[test]
        fn workers_borrow_stack_data() {
            let data = [1u64, 2, 3, 4];
            let sum = AtomicU64::new(0);
            scope(|s| {
                for chunk in data.chunks(2) {
                    s.spawn(|_| {
                        sum.fetch_add(chunk.iter().sum::<u64>(), Ordering::Relaxed);
                    });
                }
            })
            .expect("no panics");
            assert_eq!(sum.load(Ordering::Relaxed), 10);
        }

        #[test]
        fn join_returns_thread_result() {
            let r = scope(|s| s.spawn(|_| 6 * 7).join().expect("join")).expect("scope");
            assert_eq!(r, 42);
        }

        #[test]
        fn child_panic_is_an_err() {
            let r = scope(|s| {
                s.spawn(|_| panic!("boom"));
            });
            assert!(r.is_err());
        }
    }
}
