//! Offline shim for `crossbeam`.
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver}` backed by
//! `std::sync::mpsc`. The crossbeam API differs from std's in two ways that
//! matter here: `Sender` is `Sync` (std's is only `Send`) and both ends are
//! cheap handles. A mutex around the std sender restores `Sync`; contention
//! is irrelevant at the command rates the service worker sees.

#![forbid(unsafe_code)]

pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Cloneable, `Sync` sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: Arc<Mutex<mpsc::Sender<T>>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, failing only if the receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let guard = match self.inner.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Returns a pending value without blocking, if one is queued.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.inner.try_recv().map_err(|_| RecvError)
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                inner: Arc::new(Mutex::new(tx)),
            },
            Receiver { inner: rx },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::unbounded;

        #[test]
        fn send_recv_across_threads() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(7u32).unwrap());
            assert_eq!(rx.recv(), Ok(7));
        }

        #[test]
        fn recv_fails_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert!(rx.recv().is_err());
        }

        #[test]
        fn send_fails_after_receiver_drops() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn sender_is_sync() {
            fn assert_sync<T: Sync>() {}
            assert_sync::<super::Sender<u64>>();
        }
    }
}
