#![allow(dead_code, unused_imports, clippy::redundant_closure_call)]
//! Offline shim for `proptest`.
//!
//! The build environment cannot reach a crates registry, so this crate
//! reimplements the proptest 1.x API subset used by this workspace's
//! property tests: the [`strategy::Strategy`] trait with `prop_map` /
//! `prop_recursive` / `boxed`, range and tuple strategies, [`Just`],
//! `any::<T>()`, `collection::vec`, `array::uniform4`, a character-class
//! string strategy (`"[a-z0-9]{1,20}"`), weighted `prop_oneof!`, and the
//! `proptest!` test macro.
//!
//! Semantics differ from real proptest in one deliberate way: there is no
//! shrinking and no persisted failure seeds. Each test runs a fixed number
//! of cases drawn from a deterministic per-case RNG stream, so failures
//! reproduce exactly across runs while the harness stays a few hundred
//! lines.
//!
//! [`Just`]: strategy::Just

#![forbid(unsafe_code)]

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Per-test configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the debug-mode test
            // suite quick while still exercising the properties broadly.
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic RNG handed to strategies while generating one case.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// RNG for case number `case` of the test named `test_name`.
        ///
        /// Seeding from the test name keeps different properties on
        /// different streams even at the same case index.
        pub fn for_case(test_name: &str, case: u64) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            }
        }
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.inner.next_u32()
        }

        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree: `generate` draws one
    /// sample directly and nothing shrinks.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds recursive values: `recurse` receives a strategy for the
        /// previous level and returns one that may nest it. `depth` bounds
        /// the nesting; `_desired_size` and `_expected_branch_size` are
        /// accepted for API parity but unused (no size-driven shrinking
        /// here).
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let base = self.boxed();
            let mut level = base.clone();
            for _ in 0..depth {
                let deeper = recurse(level).boxed();
                let leaf = base.clone();
                level = BoxedStrategy {
                    sample: Arc::new(move |rng: &mut TestRng| {
                        // Lean towards recursion so depth is actually
                        // explored; leaves still appear at every level.
                        if rng.gen_range(0u32..4) == 0 {
                            leaf.generate(rng)
                        } else {
                            deeper.generate(rng)
                        }
                    }),
                };
            }
            level
        }

        /// Type-erases this strategy behind a cloneable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            let strat = self;
            BoxedStrategy {
                sample: Arc::new(move |rng: &mut TestRng| strat.generate(rng)),
            }
        }
    }

    /// Cloneable type-erased strategy.
    pub struct BoxedStrategy<V> {
        sample: Arc<dyn Fn(&mut TestRng) -> V>,
    }

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                sample: Arc::clone(&self.sample),
            }
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            (self.sample)(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;

        fn generate(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted union of same-valued strategies; built by `prop_oneof!`.
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total_weight: u64,
    }

    impl<V> Union<V> {
        /// Builds a union from `(weight, strategy)` arms.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty or all weights are zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            let total_weight: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(
                total_weight > 0,
                "prop_oneof! needs a positive total weight"
            );
            Union { arms, total_weight }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.gen_range(0..self.total_weight);
            for (weight, arm) in &self.arms {
                if pick < *weight as u64 {
                    return arm.generate(rng);
                }
                pick -= *weight as u64;
            }
            unreachable!("weighted pick within total weight")
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident / $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
    }

    /// Character-class string strategy: `&str` patterns like
    /// `"[a-z0-9]{1,20}"` generate matching strings.
    ///
    /// Supported syntax is the subset the workspace tests use: literal
    /// characters, `[...]` classes containing literals and `x-y` ranges
    /// (`-` last in the class is a literal), and `{n}` / `{m,n}` repetition
    /// after a class or literal.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            let chars: Vec<char> = self.chars().collect();
            let mut i = 0;
            while i < chars.len() {
                let choices: Vec<char> = if chars[i] == '[' {
                    let mut set = Vec::new();
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
                            assert!(lo <= hi, "bad range in class: {self}");
                            set.extend((lo..=hi).filter_map(char::from_u32));
                            i += 3;
                        } else {
                            set.push(chars[i]);
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated class in pattern: {self}");
                    i += 1; // consume ']'
                    set
                } else {
                    let c = chars[i];
                    i += 1;
                    vec![c]
                };
                let (min, max) = if i < chars.len() && chars[i] == '{' {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unterminated repetition in pattern: {self}"));
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse::<usize>().expect("repetition lower bound"),
                            n.trim().parse::<usize>().expect("repetition upper bound"),
                        ),
                        None => {
                            let n = body.trim().parse::<usize>().expect("repetition count");
                            (n, n)
                        }
                    }
                } else {
                    (1, 1)
                };
                assert!(!choices.is_empty(), "empty character class in: {self}");
                let count = rng.gen_range(min..=max);
                for _ in 0..count {
                    out.push(choices[rng.gen_range(0..choices.len())]);
                }
            }
            out
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }

    arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen::<bool>()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen::<f64>()
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Default)]
    pub struct Any<T> {
        _marker: PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: PhantomData,
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for vectors; built by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of `element` values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `[V; 4]`; built by [`uniform4`].
    pub struct Uniform4<S> {
        element: S,
    }

    impl<S: Strategy> Strategy for Uniform4<S> {
        type Value = [S::Value; 4];

        fn generate(&self, rng: &mut TestRng) -> [S::Value; 4] {
            [
                self.element.generate(rng),
                self.element.generate(rng),
                self.element.generate(rng),
                self.element.generate(rng),
            ]
        }
    }

    /// Arrays of four values drawn from `element`.
    pub fn uniform4<S: Strategy>(element: S) -> Uniform4<S> {
        Uniform4 { element }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property body (panics on failure; no
/// shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Picks among strategies, optionally weighted (`3 => strat`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` body runs
/// for `cases` random inputs (default 64, or `#![proptest_config(...)]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config($cfg) $($rest)*);
    };
    (@with_config($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut runner_rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), case as u64);
                $(
                    let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut runner_rng);
                )+
                // As in real proptest, the body runs in a Result-returning
                // closure so properties may `return Ok(())` early.
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    Ok(())
                })();
                if let Err(message) = outcome {
                    panic!("property {} failed: {message}", stringify!($name));
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy as _;
    use crate::test_runner::TestRng;

    #[test]
    fn string_pattern_generates_matching_chars() {
        let mut rng = TestRng::for_case("string_pattern", 0);
        for case in 0..200 {
            let mut rng2 = TestRng::for_case("string_pattern", case);
            let s = "[a-z0-9]{1,20}".generate(&mut rng2);
            assert!((1..=20).contains(&s.len()), "len {}", s.len());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
        let s = "[a-zA-Z0-9._-]{1,64}".generate(&mut rng);
        assert!((1..=64).contains(&s.len()));
        assert!(s
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')));
    }

    #[test]
    fn oneof_respects_weights_roughly() {
        let strat = prop_oneof![
            9 => Just(true),
            1 => Just(false),
        ];
        let hits = (0..1000)
            .filter(|&i| {
                let mut rng = TestRng::for_case("weights", i);
                strat.generate(&mut rng)
            })
            .count();
        assert!((820..980).contains(&hits), "hits {hits}");
    }

    #[test]
    fn recursive_strategy_terminates_and_nests() {
        #[derive(Debug)]
        enum Tree {
            Leaf(u64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0u64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 4, |inner| {
                crate::collection::vec(inner, 1..4).prop_map(Tree::Node)
            });
        let mut max_depth = 0;
        for case in 0..200 {
            let mut rng = TestRng::for_case("recursive", case);
            let t = strat.generate(&mut rng);
            let d = depth(&t);
            assert!(d <= 3, "depth {d} exceeds bound");
            max_depth = max_depth.max(d);
        }
        assert!(max_depth >= 2, "recursion never nested (max {max_depth})");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself: multiple args, trailing comma, weighted arms.
        #[test]
        fn macro_wires_args(
            x in 0u32..10,
            v in crate::collection::vec(any::<u8>(), 0..5),
            flag in any::<bool>(),
        ) {
            prop_assert!(x < 10);
            prop_assert!(v.len() < 5);
            prop_assert_eq!(flag, flag);
        }
    }
}
