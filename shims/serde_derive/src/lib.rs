//! Offline shim for `serde_derive`: no-op derive macros.
//!
//! The sandboxed build environment has no access to crates.io, so the real
//! serde stack cannot be vendored. Nothing in this workspace serializes
//! through serde (reports are hand-rendered markdown / JSON-lines) and no
//! code bounds on `Serialize`/`Deserialize`, so the derives expand to
//! nothing while still accepting the usual `#[serde(...)]` helper
//! attributes.

use proc_macro::TokenStream;

/// No-op `Serialize` derive; accepts `#[serde(...)]` helper attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; accepts `#[serde(...)]` helper attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
