//! Offline shim for `criterion`.
//!
//! Implements just enough of the criterion 0.5 API for
//! `benches/microbench.rs` to compile and produce useful output: benchmark
//! groups, `Bencher::iter` timing loops, per-iteration mean reporting, and
//! optional bytes-throughput reporting. No statistical analysis, warm-up
//! phases, or HTML reports — each benchmark runs a fixed number of timed
//! batches and prints mean time per iteration (and MiB/s when a byte
//! throughput is set).

#![forbid(unsafe_code)]

use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Builds an id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    total_nanos: u128,
}

impl Bencher {
    /// Times `routine`, running it `iters` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.total_nanos = start.elapsed().as_nanos();
    }
}

fn report(label: &str, iters: u64, total_nanos: u128, throughput: Option<Throughput>) {
    if iters == 0 || total_nanos == 0 {
        println!("{label:<40} (no samples)");
        return;
    }
    let per_iter = total_nanos as f64 / iters as f64;
    let mut line = format!("{label:<40} {:>12.1} ns/iter", per_iter);
    if let Some(Throughput::Bytes(bytes)) = throughput {
        let mib_s = bytes as f64 / (per_iter / 1e9) / (1024.0 * 1024.0);
        line.push_str(&format!("  {mib_s:>10.1} MiB/s"));
    }
    if let Some(Throughput::Elements(elems)) = throughput {
        let elems_s = elems as f64 / (per_iter / 1e9);
        line.push_str(&format!("  {elems_s:>10.0} elem/s"));
    }
    println!("{line}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: u64,
    _parent: &'a mut (),
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used for rate reporting on subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl std::fmt::Display, mut f: F) {
        let mut b = Bencher {
            iters: self.sample_size,
            total_nanos: 0,
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id),
            b.iters,
            b.total_nanos,
            self.throughput,
        );
    }

    /// Runs a benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut b = Bencher {
            iters: self.sample_size,
            total_nanos: 0,
        };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id),
            b.iters,
            b.total_nanos,
            self.throughput,
        );
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Top-level benchmark harness handle.
#[derive(Default)]
pub struct Criterion {
    unit: (),
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: 100,
            _parent: &mut self.unit,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher {
            iters: 100,
            total_nanos: 0,
        };
        f(&mut b);
        report(id, b.iters, b.total_nanos, None);
    }
}

/// Declares a benchmark group runner, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
