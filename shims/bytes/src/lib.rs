//! Offline shim for the `bytes` crate: a cheaply cloneable, sliceable,
//! immutable byte buffer backed by `Arc<Vec<u8>>` — no unsafe code.
//!
//! The workspace uses a narrow API subset:
//!
//! * [`Bytes`] — ref-counted view `(Arc<Vec<u8>>, offset, len)`. `clone`,
//!   [`Bytes::slice`], [`Bytes::split_to`] and [`Bytes::split_off`] are
//!   O(1): they bump the refcount and adjust the window, never copying
//!   payload bytes.
//! * [`BytesMut`] — a plain growable buffer that [`BytesMut::freeze`]s
//!   into a `Bytes` without copying.
//!
//! Beyond the upstream-compatible core, the shim exposes the two
//! provenance queries the zero-copy data plane is built on:
//! [`Bytes::same_parent`] (do two views share one backing allocation?)
//! and [`Bytes::try_join`] (merge adjacent views of one parent in O(1)).

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable view into a ref-counted byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    offset: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer (no allocation is shared; `Arc<Vec>` is empty).
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into a fresh buffer (the one constructor that
    /// inherently copies).
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length of this view in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pointer to the first byte of this view. Two views of the same
    /// parent at the same offset return the same pointer, which is how
    /// the fan-out tests assert replicas alias one allocation.
    pub fn as_ptr(&self) -> *const u8 {
        self.as_slice().as_ptr()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.offset..self.offset + self.len]
    }

    /// O(1) sub-view; shares the backing allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or decreasing.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice [{start}, {end}) out of bounds of Bytes of length {}",
            self.len
        );
        Bytes {
            data: Arc::clone(&self.data),
            offset: self.offset + start,
            len: end - start,
        }
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the
    /// rest. O(1), shares the backing allocation.
    ///
    /// # Panics
    ///
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len, "split_to {at} > len {}", self.len);
        let head = self.slice(..at);
        self.offset += at;
        self.len -= at;
        head
    }

    /// Splits off and returns everything from `at` on; `self` keeps the
    /// first `at` bytes. O(1), shares the backing allocation.
    ///
    /// # Panics
    ///
    /// Panics if `at > len`.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len, "split_off {at} > len {}", self.len);
        let tail = self.slice(at..);
        self.len = at;
        tail
    }

    /// Shortens the view to at most `len` bytes (no-op if already
    /// shorter). O(1).
    pub fn truncate(&mut self, len: usize) {
        self.len = self.len.min(len);
    }

    /// Empties the view. O(1).
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Whether two views share one backing allocation, regardless of
    /// their windows.
    pub fn same_parent(&self, other: &Bytes) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    /// Merges two views in O(1) if `next` starts exactly where `self`
    /// ends within the same parent; `None` otherwise. Either side being
    /// empty yields the other unchanged, so a fold over segments starts
    /// from `Bytes::new()`.
    pub fn try_join(&self, next: &Bytes) -> Option<Bytes> {
        if self.is_empty() {
            return Some(next.clone());
        }
        if next.is_empty() {
            return Some(self.clone());
        }
        if self.same_parent(next) && self.offset + self.len == next.offset {
            Some(Bytes {
                data: Arc::clone(&self.data),
                offset: self.offset,
                len: self.len + next.len,
            })
        } else {
            None
        }
    }

    /// Mutable access via copy-on-write: borrows the backing bytes in
    /// place when this view uniquely owns its whole parent, otherwise
    /// first detaches into a private copy (the only time bytes move).
    pub fn make_mut(&mut self) -> &mut [u8] {
        let unique = Arc::strong_count(&self.data) == 1;
        if !(unique && self.offset == 0 && self.len == self.data.len()) {
            let copy = self.as_slice().to_vec();
            self.data = Arc::new(copy);
            self.offset = 0;
            self.len = self.data.len();
        }
        let len = self.len;
        // The Arc is uniquely owned after the detach above.
        &mut Arc::get_mut(&mut self.data).expect("detached arc is unique")[..len]
    }

    /// Copy-on-write access to the backing vector itself, for callers
    /// that need to resize as well as mutate. Detaches into a private
    /// copy first unless this view uniquely owns its whole parent; after
    /// `f` runs, the view re-covers the (possibly resized) vector.
    pub fn with_vec_mut<R>(&mut self, f: impl FnOnce(&mut Vec<u8>) -> R) -> R {
        let unique = Arc::strong_count(&self.data) == 1;
        if !(unique && self.offset == 0 && self.len == self.data.len()) {
            let copy = self.as_slice().to_vec();
            self.data = Arc::new(copy);
            self.offset = 0;
        }
        let vec = Arc::get_mut(&mut self.data).expect("detached arc is unique");
        let out = f(vec);
        self.len = vec.len();
        out
    }

    /// Copies the view out into an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: Arc::new(v),
            offset: 0,
            len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl From<&Vec<u8>> for Bytes {
    fn from(s: &Vec<u8>) -> Self {
        Bytes::from(s.clone())
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(a: [u8; N]) -> Self {
        Bytes::from(a.to_vec())
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(a: &[u8; N]) -> Self {
        Bytes::from(a.to_vec())
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.to_vec()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_slice(), f)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A growable byte buffer that freezes into [`Bytes`] without copying.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// A zero-filled buffer of `len` bytes.
    pub fn zeroed(len: usize) -> Self {
        BytesMut { data: vec![0; len] }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }

    /// Alias for [`BytesMut::extend_from_slice`] (upstream `BufMut`).
    pub fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }

    /// Resizes, filling new space with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.data.resize(new_len, value);
    }

    /// Shortens the buffer to at most `len` bytes.
    pub fn truncate(&mut self, len: usize) {
        self.data.truncate(len);
    }

    /// Empties the buffer.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Converts into an immutable [`Bytes`] without copying: the heap
    /// allocation moves into the new `Arc` parent.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Consumes the buffer, returning the underlying vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.data
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(data: Vec<u8>) -> Self {
        BytesMut { data }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> Self {
        BytesMut { data: s.to_vec() }
    }
}

impl Extend<u8> for BytesMut {
    fn extend<I: IntoIterator<Item = u8>>(&mut self, iter: I) {
        self.data.extend(iter);
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.data, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_and_slice_share_parent() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let c = b.clone();
        let s = b.slice(1..4);
        assert!(b.same_parent(&c));
        assert!(b.same_parent(&s));
        assert_eq!(s, [2u8, 3, 4]);
        assert_eq!(s.as_ptr(), b.slice(1..).as_ptr());
    }

    #[test]
    fn split_to_and_off_match_vec_semantics() {
        let mut b = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(head, [0u8, 1]);
        assert_eq!(b, [2u8, 3, 4, 5]);
        let tail = b.split_off(3);
        assert_eq!(b, [2u8, 3, 4]);
        assert_eq!(tail, [5u8]);
        assert!(head.same_parent(&tail));
    }

    #[test]
    fn try_join_merges_adjacent_views_only() {
        let b = Bytes::from(vec![9u8; 100]);
        let left = b.slice(0..40);
        let right = b.slice(40..100);
        let gap = b.slice(41..100);
        let joined = left.try_join(&right).expect("adjacent");
        assert_eq!(joined.len(), 100);
        assert_eq!(joined.as_ptr(), b.as_ptr());
        assert!(left.try_join(&gap).is_none());
        let other = Bytes::from(vec![9u8; 60]);
        assert!(left.try_join(&other).is_none());
        assert_eq!(Bytes::new().try_join(&right).expect("empty lhs"), right);
        assert_eq!(left.try_join(&Bytes::new()).expect("empty rhs"), left);
    }

    #[test]
    fn make_mut_is_copy_on_write() {
        let mut a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        a.make_mut()[0] = 99;
        assert_eq!(a, [99u8, 2, 3]);
        assert_eq!(b, [1u8, 2, 3], "sibling view unaffected");
        assert!(!a.same_parent(&b), "mutation detached the parent");
        // Unique whole-parent views mutate in place.
        let ptr = a.as_ptr();
        a.make_mut()[1] = 42;
        assert_eq!(a.as_ptr(), ptr, "unique view mutated without copying");
    }

    #[test]
    fn with_vec_mut_detaches_and_resyncs_len() {
        let mut a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        a.with_vec_mut(|v| v.resize(5, 9));
        assert_eq!(a, [1u8, 2, 3, 9, 9]);
        assert_eq!(b, [1u8, 2, 3], "sibling view unaffected");
        // A windowed view re-covers just its own bytes after the call.
        let mut w = Bytes::from(vec![0u8, 1, 2, 3]).slice(1..3);
        w.with_vec_mut(|v| v.push(7));
        assert_eq!(w, [1u8, 2, 7]);
    }

    #[test]
    fn freeze_moves_without_copying() {
        let mut m = BytesMut::with_capacity(8);
        m.extend_from_slice(&[1, 2, 3]);
        m.resize(5, 0);
        let ptr = m.as_ref().as_ptr();
        let b = m.freeze();
        assert_eq!(b, [1u8, 2, 3, 0, 0]);
        assert_eq!(b.as_ptr(), ptr, "freeze reuses the allocation");
    }

    #[test]
    fn equality_across_types() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b, vec![1u8, 2, 3]);
        assert_eq!(vec![1u8, 2, 3], b);
        assert_eq!(b, [1u8, 2, 3]);
        assert_eq!(b, &[1u8, 2, 3][..]);
        assert_eq!(b[1], 2);
        assert_eq!(&b[1..], &[2u8, 3][..]);
    }

    #[test]
    fn truncate_and_clear_are_window_ops() {
        let parent = Bytes::from(vec![7u8; 10]);
        let mut b = parent.clone();
        b.truncate(4);
        assert_eq!(b.len(), 4);
        assert!(b.same_parent(&parent));
        b.clear();
        assert!(b.is_empty());
    }
}
