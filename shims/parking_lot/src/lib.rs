//! Offline shim for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` behind parking_lot's non-poisoning API: `lock()`
//! returns a guard directly rather than a `Result`. A poisoned std mutex
//! (a thread panicked while holding it) is unwrapped into the inner guard,
//! matching parking_lot's "no poisoning" semantics.

#![forbid(unsafe_code)]

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdRwLockReadGuard, RwLockWriteGuard as StdRwLockWriteGuard,
};

/// Non-poisoning mutex with the `parking_lot::Mutex` API subset this
/// workspace uses.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex wrapping `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Acquires the lock, blocking the current thread until it is available.
    ///
    /// Unlike `std`, this never returns a poison error: if a previous holder
    /// panicked, the lock is recovered and the guard returned anyway.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Returns a mutable reference to the inner value (requires `&mut self`,
    /// so no locking is needed).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Non-poisoning reader-writer lock with the `parking_lot::RwLock` API
/// subset this workspace uses.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: StdRwLock<T>,
}

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = StdRwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = StdRwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock wrapping `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Acquires a shared read lock, recovering from poisoning like
    /// [`Mutex::lock`].
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires the exclusive write lock, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire a shared read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire the exclusive write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Returns a mutable reference to the inner value (requires `&mut self`,
    /// so no locking is needed).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};
    use std::sync::Arc;

    #[test]
    fn lock_round_trips() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn survives_poison() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(1);
        let guard = m.lock();
        assert!(m.try_lock().is_none());
        drop(guard);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_read_write_round_trips() {
        let l = RwLock::new(41);
        *l.write() += 1;
        assert_eq!(*l.read(), 42);
        let (a, b) = (l.read(), l.read());
        assert_eq!((*a, *b), (42, 42));
        drop((a, b));
        assert_eq!(l.into_inner(), 42);
    }

    #[test]
    fn rwlock_try_write_contended_by_reader() {
        let l = RwLock::new(1);
        let r = l.read();
        assert!(l.try_write().is_none());
        assert!(l.try_read().is_some());
        drop(r);
        assert!(l.try_write().is_some());
    }

    #[test]
    fn rwlock_survives_poison() {
        let l = Arc::new(RwLock::new(0u32));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _guard = l2.write();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*l.read(), 0);
        *l.write() += 1;
        assert_eq!(*l.read(), 1);
    }
}
